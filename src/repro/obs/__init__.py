"""Observability: span tracing, ranking attribution, engine metrics.

Three independent pieces (see ``docs/OBSERVABILITY.md``):

* :mod:`repro.obs.trace` — a lightweight span tracer instrumenting the
  query pipeline (preflight, cache, root pool, per-combinator stream
  expansion, dedup), NDJSON/dict export.  Opt-in per query; zero cost
  when off.
* :mod:`repro.obs.attribution` — :class:`ScoreBreakdown`, the six
  Figure-7 ranking terms per candidate, summing exactly to the ranked
  score.
* :mod:`repro.obs.metrics` — the engine-wide :class:`Metrics`
  registry: counters and histograms (steps per query, latency, depth
  distribution, truncation/preflight/cache rates), JSON-exportable.

This package sits *below* the engine (the engine imports it), so it
must not import :mod:`repro.engine` at module level.
"""

from .attribution import ScoreBreakdown
from .metrics import DEFAULT_BOUNDS, Histogram, Metrics
from .schema import load_schema, validate_record, validate_trace_text
from .trace import (
    NULL_TRACER,
    NullTracer,
    Span,
    TRACE_FORMAT,
    TRACE_VERSION,
    Tracer,
    ndjson_to_dicts,
    trace_to_ndjson,
)

__all__ = [
    "DEFAULT_BOUNDS",
    "Histogram",
    "Metrics",
    "NULL_TRACER",
    "NullTracer",
    "ScoreBreakdown",
    "Span",
    "TRACE_FORMAT",
    "TRACE_VERSION",
    "Tracer",
    "load_schema",
    "ndjson_to_dicts",
    "trace_to_ndjson",
    "validate_record",
    "validate_trace_text",
]
