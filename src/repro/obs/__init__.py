"""Observability: span tracing, ranking attribution, engine metrics.

Three independent pieces (see ``docs/OBSERVABILITY.md``):

* :mod:`repro.obs.trace` — a lightweight span tracer instrumenting the
  query pipeline (preflight, cache, root pool, per-combinator stream
  expansion, dedup), NDJSON/dict export.  Opt-in per query; zero cost
  when off.
* :mod:`repro.obs.attribution` — :class:`ScoreBreakdown`, the six
  Figure-7 ranking terms per candidate, summing exactly to the ranked
  score.
* :mod:`repro.obs.metrics` — the engine-wide :class:`Metrics`
  registry: counters and histograms (steps per query, latency, depth
  distribution, truncation/preflight/cache rates), JSON-exportable.
* :mod:`repro.obs.runlog` — the structured NDJSON run/event log
  (:class:`RunLog`): a manifest plus per-phase and per-query records
  for a whole run (eval battery, corpus build, bench, batch).
* :mod:`repro.obs.profile` — :class:`Profile`, the deterministic
  self-time profiler aggregating span trees across a run, with
  collapsed-stack flamegraph export.
* :mod:`repro.obs.diff` — :func:`diff_runs`, phase-level latency
  attribution between two run logs or bench documents.
* :mod:`repro.obs.expo` — Prometheus text exposition (render, parse,
  validate) of :class:`Metrics` registries; what ``GET /v1/metrics``
  and ``repro stats --url`` speak.
* :mod:`repro.obs.slo` — rolling-window SLO objectives with
  multi-window burn rates, evaluated live (``/v1/healthz``) or offline
  over server run logs (``repro slo``).

This package sits *below* the engine (the engine imports it), so it
must not import :mod:`repro.engine` at module level.
"""

from .attribution import ScoreBreakdown
from .expo import (
    EXPOSITION_CONTENT_TYPE,
    LATENCY_BOUNDS_MS,
    parse_exposition,
    render_metrics_table,
    render_prometheus,
    validate_exposition,
)
from .slo import (
    DEFAULT_SLO_SPEC,
    SLOObjectives,
    SLOTracker,
    render_slo_report,
    slo_from_run_log,
)
from .diff import (
    PhaseDelta,
    RunDiff,
    diff_runs,
    load_run_artifact,
    render_markdown,
)
from .metrics import DEFAULT_BOUNDS, Histogram, Metrics
from .profile import Profile, profile_run_log, profile_traces
from .runlog import (
    RUNLOG_FORMAT,
    RUNLOG_VERSION,
    RunLog,
    read_run_log,
    signature_hex,
)
from .schema import (
    load_runlog_schema,
    load_schema,
    validate_record,
    validate_runlog_text,
    validate_trace_text,
)
from .trace import (
    NULL_TRACER,
    NullTracer,
    Span,
    TRACE_FORMAT,
    TRACE_VERSION,
    Tracer,
    ndjson_to_dicts,
    trace_to_ndjson,
)

__all__ = [
    "DEFAULT_BOUNDS",
    "DEFAULT_SLO_SPEC",
    "EXPOSITION_CONTENT_TYPE",
    "Histogram",
    "LATENCY_BOUNDS_MS",
    "Metrics",
    "NULL_TRACER",
    "NullTracer",
    "PhaseDelta",
    "Profile",
    "RUNLOG_FORMAT",
    "RUNLOG_VERSION",
    "RunDiff",
    "RunLog",
    "SLOObjectives",
    "SLOTracker",
    "ScoreBreakdown",
    "Span",
    "TRACE_FORMAT",
    "TRACE_VERSION",
    "Tracer",
    "diff_runs",
    "load_run_artifact",
    "load_runlog_schema",
    "load_schema",
    "ndjson_to_dicts",
    "parse_exposition",
    "profile_run_log",
    "profile_traces",
    "read_run_log",
    "render_markdown",
    "render_metrics_table",
    "render_prometheus",
    "render_slo_report",
    "signature_hex",
    "slo_from_run_log",
    "trace_to_ndjson",
    "validate_exposition",
    "validate_record",
    "validate_runlog_text",
    "validate_trace_text",
]
