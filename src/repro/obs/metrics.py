"""Engine-wide metrics: named counters and bucketed histograms.

One :class:`Metrics` registry lives on each
:class:`~repro.engine.completer.CompletionEngine` and accumulates over
its whole life — every query ticks a handful of counters (queries,
cache replays, truncations, preflight rejections, degradations) and a
few histogram observations (steps per query, latency, completion
depth).  ``repro stats`` and the REPL's ``:stats`` print a snapshot;
:meth:`Metrics.to_dict` is the JSON export.

The registry is deliberately cheap — a lock, dict increments, one
bucket search per observation — so it stays on even when tracing is
off; the per-query cost is noise against a single stream expansion.
Metric names are documented in ``docs/OBSERVABILITY.md``.
"""

from __future__ import annotations

import bisect
import json
import threading
from typing import Any, Dict, List, Optional, Sequence, Tuple

#: default histogram bucket upper bounds (values above the last bound
#: land in the overflow bucket); roughly powers of four so both
#: microsecond latencies and six-figure step counts resolve
DEFAULT_BOUNDS: Sequence[float] = (
    1, 4, 16, 64, 256, 1024, 4096, 16384, 65536, 262144,
)


class Histogram:
    """Counts of observations per bucket, plus count/sum/min/max.

    ``bounds`` are inclusive upper bounds; one extra overflow bucket
    catches everything beyond the last bound.
    """

    __slots__ = ("bounds", "buckets", "count", "total", "min", "max")

    def __init__(self, bounds: Sequence[float] = DEFAULT_BOUNDS) -> None:
        self.bounds: List[float] = list(bounds)
        self.buckets: List[int] = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        self.buckets[bisect.bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "count": self.count,
            "sum": self.total,
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
            "bounds": list(self.bounds),
            "buckets": list(self.buckets),
        }


class Metrics:
    """A thread-safe registry of counters and histograms.

    Names are created on first use; histograms keep the bucket bounds
    they were created with (a later ``bounds`` argument is ignored).
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, int] = {}
        self._histograms: Dict[str, Histogram] = {}

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------
    def incr(self, name: str, value: int = 1) -> None:
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + value

    def observe(
        self,
        name: str,
        value: float,
        bounds: Sequence[float] = DEFAULT_BOUNDS,
    ) -> None:
        with self._lock:
            histogram = self._histograms.get(name)
            if histogram is None:
                histogram = self._histograms[name] = Histogram(bounds)
            histogram.observe(value)

    def record(
        self,
        counters: Optional[Dict[str, int]] = None,
        observations: Optional[
            Sequence[Tuple[str, float, Sequence[float]]]
        ] = None,
    ) -> None:
        """Apply a batch of increments and ``(name, value, bounds)``
        observations under one lock acquisition — the per-query fast
        path."""
        with self._lock:
            if counters:
                for name, value in counters.items():
                    self._counters[name] = self._counters.get(name, 0) + value
            if observations:
                for name, value, bounds in observations:
                    histogram = self._histograms.get(name)
                    if histogram is None:
                        histogram = self._histograms[name] = Histogram(bounds)
                    histogram.observe(value)

    def counter(self, name: str) -> int:
        """Current value of a counter (0 when never incremented)."""
        with self._lock:
            return self._counters.get(name, 0)

    def histogram(self, name: str) -> Optional[Histogram]:
        with self._lock:
            return self._histograms.get(name)

    def reset(self) -> None:
        with self._lock:
            self._counters.clear()
            self._histograms.clear()

    # ------------------------------------------------------------------
    # export
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "counters": {
                    name: self._counters[name]
                    for name in sorted(self._counters)
                },
                "histograms": {
                    name: self._histograms[name].to_dict()
                    for name in sorted(self._histograms)
                },
            }

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)
