"""NDJSON validation against the checked-in JSON schemas.

``trace_schema.json`` (next to this module) describes one line of a
trace file — the header or a span record; ``runlog_schema.json``
describes one line of a structured run log (manifest / phase / query /
event, :mod:`repro.obs.runlog`).  CI runs ``repro complete --trace``
on every builtin universe and validates the output here via
``repro stats --validate-trace``; run logs validate via
``repro stats --validate-runlog``.

The container ships no third-party ``jsonschema``, so
:func:`validate_record` interprets the subset of JSON Schema the file
actually uses — ``type`` (scalar or union), ``const``, ``enum``,
``properties`` / ``required`` / ``additionalProperties``, ``items``
and ``oneOf`` — and raises ``ValueError`` on any schema keyword
outside that subset, so a schema edit cannot silently stop
validating.
"""

from __future__ import annotations

import json
import pathlib
from typing import Any, Dict, List

SCHEMA_PATH = pathlib.Path(__file__).parent / "trace_schema.json"
RUNLOG_SCHEMA_PATH = pathlib.Path(__file__).parent / "runlog_schema.json"

_KNOWN_KEYWORDS = {
    "$schema", "title", "description",
    "type", "const", "enum",
    "properties", "required", "additionalProperties",
    "items", "oneOf",
}

_TYPES = {
    "object": dict,
    "array": list,
    "string": str,
    "number": (int, float),
    "integer": int,
    "boolean": bool,
    "null": type(None),
}


def load_schema(path: "pathlib.Path" = None) -> Dict[str, Any]:
    with open(path or SCHEMA_PATH) as handle:
        return json.load(handle)


def load_runlog_schema() -> Dict[str, Any]:
    return load_schema(RUNLOG_SCHEMA_PATH)


def _type_ok(value: Any, type_name: str) -> bool:
    expected = _TYPES[type_name]
    if isinstance(value, bool):
        # bool is an int subclass in Python; JSON keeps them distinct
        return type_name == "boolean"
    return isinstance(value, expected)


def _check(value: Any, schema: Dict[str, Any], path: str,
           errors: List[str]) -> None:
    unknown = set(schema) - _KNOWN_KEYWORDS
    if unknown:
        raise ValueError(
            "schema uses unsupported keywords {} at {}".format(
                sorted(unknown), path or "$"))

    if "oneOf" in schema:
        failures: List[List[str]] = []
        for option in schema["oneOf"]:
            attempt: List[str] = []
            _check(value, option, path, attempt)
            if not attempt:
                return
            failures.append(attempt)
        errors.append("{}: matches none of the {} oneOf options "
                      "(closest: {})".format(
                          path or "$", len(failures),
                          min(failures, key=len)[0]))
        return

    if "const" in schema and value != schema["const"]:
        errors.append("{}: expected {!r}, got {!r}".format(
            path or "$", schema["const"], value))
        return
    if "enum" in schema and value not in schema["enum"]:
        errors.append("{}: {!r} not in {}".format(
            path or "$", value, schema["enum"]))
        return

    if "type" in schema:
        allowed = schema["type"]
        if isinstance(allowed, str):
            allowed = [allowed]
        if not any(_type_ok(value, name) for name in allowed):
            errors.append("{}: expected {}, got {}".format(
                path or "$", "/".join(allowed), type(value).__name__))
            return

    if isinstance(value, dict):
        for name in schema.get("required", ()):
            if name not in value:
                errors.append("{}: missing required key {!r}".format(
                    path or "$", name))
        properties = schema.get("properties", {})
        for name, subschema in properties.items():
            if name in value:
                _check(value[name], subschema,
                       "{}.{}".format(path, name) if path else name, errors)
        additional = schema.get("additionalProperties", True)
        extras = [name for name in value if name not in properties]
        if additional is False and extras:
            errors.append("{}: unexpected keys {}".format(
                path or "$", sorted(extras)))
        elif isinstance(additional, dict):
            for name in extras:
                _check(value[name], additional,
                       "{}.{}".format(path, name) if path else name, errors)

    if isinstance(value, list) and "items" in schema:
        for index, item in enumerate(value):
            _check(item, schema["items"], "{}[{}]".format(path, index), errors)


def validate_record(record: Any, schema: Dict[str, Any] = None) -> List[str]:
    """Validate one NDJSON record; returns a list of problems (empty
    when valid)."""
    if schema is None:
        schema = load_schema()
    errors: List[str] = []
    _check(record, schema, "", errors)
    return errors


def validate_trace_text(text: str) -> List[str]:
    """Validate a whole NDJSON trace document.

    Returns one message per invalid line (prefixed ``line N:``), plus a
    message if the document contains no header line.  Empty list =
    valid.
    """
    from .trace import ndjson_to_dicts

    schema = load_schema()
    errors: List[str] = []
    try:
        records = ndjson_to_dicts(text)
    except ValueError as error:
        return [str(error)]
    if not records:
        return ["empty trace document"]
    for number, record in enumerate(records, start=1):
        for problem in validate_record(record, schema):
            errors.append("line {}: {}".format(number, problem))
    if not any(record.get("kind") == "trace" for record in records):
        errors.append("no trace header record (kind == 'trace')")
    return errors


def validate_runlog_text(text: str) -> List[str]:
    """Validate a whole NDJSON run-log document against
    ``runlog_schema.json``.

    Same contract as :func:`validate_trace_text`: one message per
    invalid line, plus structural messages (no manifest, manifest not
    first).  Empty list = valid.
    """
    from .trace import ndjson_to_dicts

    schema = load_runlog_schema()
    errors: List[str] = []
    try:
        records = ndjson_to_dicts(text)
    except ValueError as error:
        return [str(error)]
    if not records:
        return ["empty run-log document"]
    for number, record in enumerate(records, start=1):
        for problem in validate_record(record, schema):
            errors.append("line {}: {}".format(number, problem))
    if records[0].get("kind") != "run":
        errors.append("first record is not the run manifest (kind == 'run')")
    return errors
