"""Prometheus text exposition for the :class:`~repro.obs.metrics.Metrics`
registries — dependency-free render *and* parse.

The serve path exposes every tenant's engine registry (plus the
server-wide HTTP registry) at ``GET /v1/metrics`` in the Prometheus
text exposition format (version 0.0.4), so any standard scraper can
poll a live completion server.  This module is the whole story:

* :func:`render_prometheus` turns ``Metrics.to_dict()``-shaped
  snapshots (counters + bucketed histograms) into exposition text,
  one label set per snapshot (the server labels tenants with
  ``workspace="<name>"``);
* :func:`parse_exposition` parses exposition text back into typed
  samples — what ``repro stats --url --validate`` round-trips;
* :func:`validate_exposition` runs the structural checks a scraper
  would trip over (unparsable lines, missing ``# TYPE``, histogram
  buckets that are not cumulative, ``+Inf`` bucket != ``_count``);
* :func:`render_metrics_table` / :func:`table_from_samples` are the
  human-readable spellings behind ``repro stats --watch``.

Counters render as ``<prefix>_<name>_total``; histograms render the
standard ``_bucket{le=...}`` cumulative series plus ``_sum`` and
``_count``.  Metric names are sanitised to the Prometheus charset
(``repro stats``' engine phase counters contain ``:``, which becomes
``_``).  See docs/OBSERVABILITY.md.
"""

from __future__ import annotations

import math
import re
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

#: metric-name prefix stamped on every exposed family
DEFAULT_PREFIX = "repro"

#: the content type a compliant scrape endpoint answers with
EXPOSITION_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

#: histogram bucket bounds for millisecond latencies (powers of two up
#: to ~4 s); finer than the engine's step-count bounds so serve-path
#: tail latency resolves
LATENCY_BOUNDS_MS: Sequence[float] = (
    1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096,
)

_INVALID_CHARS = re.compile(r"[^a-zA-Z0-9_]")

#: one exposition sample line: name, optional {labels}, value
_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_][a-zA-Z0-9_]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r"\s+(?P<value>\S+)\s*$"
)

_LABEL_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')

#: a sample key: (metric name, sorted (label, value) pairs)
SampleKey = Tuple[str, Tuple[Tuple[str, str], ...]]


def sanitize_metric_name(name: str) -> str:
    """Map an internal metric name onto the Prometheus charset."""
    cleaned = _INVALID_CHARS.sub("_", name)
    if cleaned and cleaned[0].isdigit():
        cleaned = "_" + cleaned
    return cleaned or "_"


def _escape_label(value: str) -> str:
    return (value.replace("\\", "\\\\").replace('"', '\\"')
            .replace("\n", "\\n"))


def _label_suffix(labels: Dict[str, str]) -> str:
    if not labels:
        return ""
    parts = ['{}="{}"'.format(key, _escape_label(str(labels[key])))
             for key in sorted(labels)]
    return "{" + ",".join(parts) + "}"


def _format_value(value: float) -> str:
    if value != value:  # NaN
        return "NaN"
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def _format_bound(bound: float) -> str:
    return "+Inf" if bound == math.inf else _format_value(float(bound))


def render_prometheus(
    sections: Iterable[Tuple[Dict[str, str], Dict[str, Any]]],
    prefix: str = DEFAULT_PREFIX,
    gauges: Iterable[Tuple[str, Dict[str, str], float]] = (),
) -> str:
    """Render registry snapshots as Prometheus exposition text.

    ``sections`` is an iterable of ``(labels, metrics_dict)`` pairs
    where ``metrics_dict`` is :meth:`Metrics.to_dict` output; every
    sample in a section carries that section's labels.  ``gauges`` adds
    point-in-time values (uptime, queue depth, SLO burn) that live in
    no registry.  Samples of the same family are grouped under one
    ``# TYPE`` line, as the format requires.
    """
    counters: Dict[str, List[Tuple[Dict[str, str], float]]] = {}
    histograms: Dict[str, List[Tuple[Dict[str, str], Dict[str, Any]]]] = {}
    for labels, snapshot in sections:
        for name, value in snapshot.get("counters", {}).items():
            metric = "{}_{}_total".format(prefix, sanitize_metric_name(name))
            counters.setdefault(metric, []).append((labels, float(value)))
        for name, hist in snapshot.get("histograms", {}).items():
            metric = "{}_{}".format(prefix, sanitize_metric_name(name))
            histograms.setdefault(metric, []).append((labels, hist))

    gauge_families: Dict[str, List[Tuple[Dict[str, str], float]]] = {}
    for name, labels, value in gauges:
        metric = "{}_{}".format(prefix, sanitize_metric_name(name))
        gauge_families.setdefault(metric, []).append((labels, float(value)))

    lines: List[str] = []
    for metric in sorted(gauge_families):
        lines.append("# TYPE {} gauge".format(metric))
        for labels, value in gauge_families[metric]:
            lines.append("{}{} {}".format(
                metric, _label_suffix(labels), _format_value(value)))
    for metric in sorted(counters):
        lines.append("# TYPE {} counter".format(metric))
        for labels, value in counters[metric]:
            lines.append("{}{} {}".format(
                metric, _label_suffix(labels), _format_value(value)))
    for metric in sorted(histograms):
        lines.append("# TYPE {} histogram".format(metric))
        for labels, hist in histograms[metric]:
            cumulative = 0
            for bound, count in zip(
                list(hist["bounds"]) + [math.inf], hist["buckets"]
            ):
                cumulative += count
                bucket_labels = dict(labels)
                bucket_labels["le"] = _format_bound(bound)
                lines.append("{}_bucket{} {}".format(
                    metric, _label_suffix(bucket_labels), cumulative))
            lines.append("{}_sum{} {}".format(
                metric, _label_suffix(labels), _format_value(hist["sum"])))
            lines.append("{}_count{} {}".format(
                metric, _label_suffix(labels), hist["count"]))
    return "\n".join(lines) + "\n"


# ----------------------------------------------------------------------
# parsing / validation (the --validate round trip)
# ----------------------------------------------------------------------

def _parse_value(text: str) -> float:
    if text == "+Inf":
        return math.inf
    if text == "-Inf":
        return -math.inf
    return float(text)


def parse_exposition(text: str) -> Dict[str, Any]:
    """Parse exposition text into ``{"types": {...}, "samples": {...}}``.

    ``types`` maps family name to its declared type; ``samples`` maps
    :data:`SampleKey` to the float value.  Raises ``ValueError`` on the
    first malformed line or duplicated sample.
    """
    types: Dict[str, str] = {}
    samples: Dict[SampleKey, float] = {}
    for number, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("# TYPE "):
            parts = line.split()
            if len(parts) != 4:
                raise ValueError(
                    "line {}: malformed TYPE line: {!r}".format(number, line))
            types[parts[2]] = parts[3]
            continue
        if line.startswith("#"):
            continue
        match = _SAMPLE_RE.match(line)
        if match is None:
            raise ValueError(
                "line {}: not an exposition sample: {!r}".format(number, line))
        labels: Dict[str, str] = {}
        blob = match.group("labels")
        if blob:
            consumed = 0
            for found in _LABEL_RE.finditer(blob):
                labels[found.group(1)] = (
                    found.group(2).replace('\\"', '"')
                    .replace("\\n", "\n").replace("\\\\", "\\"))
                consumed += len(found.group(0))
            if consumed < len(blob.replace(",", "")):
                raise ValueError(
                    "line {}: malformed labels: {!r}".format(number, blob))
        try:
            value = _parse_value(match.group("value"))
        except ValueError:
            raise ValueError("line {}: bad sample value {!r}".format(
                number, match.group("value")))
        key = (match.group("name"), tuple(sorted(labels.items())))
        if key in samples:
            raise ValueError(
                "line {}: duplicate sample {}{}".format(
                    number, key[0], _label_suffix(labels)))
        samples[key] = value
    return {"types": types, "samples": samples}


def _family_of(name: str) -> str:
    for suffix in ("_bucket", "_sum", "_count"):
        if name.endswith(suffix):
            return name[: -len(suffix)]
    return name


def validate_exposition(text: str) -> List[str]:
    """Structural problems in exposition text (empty list = valid).

    Checks every line parses, every sample belongs to a declared
    family, counters and histogram counts are non-negative, and each
    histogram series is cumulative with its ``+Inf`` bucket equal to
    ``_count`` — the invariants a Prometheus scraper relies on.
    """
    try:
        parsed = parse_exposition(text)
    except ValueError as error:
        return [str(error)]
    problems: List[str] = []
    types, samples = parsed["types"], parsed["samples"]
    if not samples:
        problems.append("no samples in exposition")
    histogram_series: Dict[SampleKey, Dict[str, float]] = {}
    for (name, labels), value in samples.items():
        family = _family_of(name)
        declared = types.get(family) or types.get(name)
        if declared is None:
            problems.append("sample {} has no # TYPE declaration".format(name))
            continue
        if declared == "counter" and value < 0:
            problems.append("counter {} is negative ({})".format(name, value))
        if declared == "histogram" and name.endswith("_bucket"):
            le = dict(labels).get("le")
            if le is None:
                problems.append(
                    "histogram bucket {} lacks an 'le' label".format(name))
                continue
            base = tuple(sorted(pair for pair in labels if pair[0] != "le"))
            series = histogram_series.setdefault((family, base), {})
            series[le] = value
    for (family, base), series in sorted(histogram_series.items()):
        if "+Inf" not in series:
            problems.append(
                "histogram {} has no +Inf bucket".format(family))
            continue
        ordered = sorted(series.items(), key=lambda kv: _parse_value(kv[0]))
        counts = [count for _, count in ordered]
        if any(b > a for b, a in zip(counts, counts[1:])):
            problems.append(
                "histogram {} buckets are not cumulative".format(family))
        count_key = ("{}_count".format(family), base)
        if count_key in samples and series["+Inf"] != samples[count_key]:
            problems.append(
                "histogram {}: +Inf bucket ({}) != _count ({})".format(
                    family, series["+Inf"], samples[count_key]))
        sum_key = ("{}_sum".format(family), base)
        if sum_key not in samples:
            problems.append("histogram {} has no _sum sample".format(family))
    return problems


# ----------------------------------------------------------------------
# human-readable tables (repro stats --watch)
# ----------------------------------------------------------------------

def render_metrics_table(
    snapshot: Dict[str, Any], title: Optional[str] = None
) -> List[str]:
    """An aligned text table of one ``Metrics.to_dict()`` snapshot."""
    lines: List[str] = []
    if title:
        lines.append(title)
    counters = snapshot.get("counters", {})
    histograms = snapshot.get("histograms", {})
    width = max((len(name) for name in list(counters) + list(histograms)),
                default=0)
    for name in sorted(counters):
        lines.append("  {:<{}}  {}".format(name, width, counters[name]))
    for name in sorted(histograms):
        hist = histograms[name]
        lines.append(
            "  {:<{}}  count={} mean={:.2f} min={} max={}".format(
                name, width, hist["count"], hist["mean"],
                hist["min"], hist["max"]))
    if not counters and not histograms:
        lines.append("  (no metrics recorded)")
    return lines


def table_from_samples(parsed: Dict[str, Any]) -> List[str]:
    """An aligned table of parsed exposition samples (bucket series are
    folded away — ``_sum``/``_count`` carry the summary)."""
    rows: List[Tuple[str, float]] = []
    for (name, labels), value in sorted(parsed["samples"].items()):
        if name.endswith("_bucket"):
            continue
        rows.append((name + _label_suffix(dict(labels)), value))
    if not rows:
        return ["  (no samples)"]
    width = max(len(label) for label, _ in rows)
    return ["  {:<{}}  {}".format(label, width, _format_value(value))
            for label, value in rows]
