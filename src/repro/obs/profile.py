"""A deterministic self-time profiler over exported span trees.

The :class:`~repro.obs.trace.Tracer` answers *where did this one query
spend its time*; a :class:`Profile` aggregates many traces — a whole
battery, eval run, or bench workload — into per-stack-path totals:

* **inclusive time** — the span's own wall extent (``duration_ms``),
  summed over every occurrence of the same stack path;
* **self (exclusive) time** — inclusive time minus the inclusive time
  of the span's direct children, clamped at zero.  Lazy stream spans
  overlap their siblings by design (``docs/OBSERVABILITY.md``), so
  exclusive time is an attribution convention, not a partition — the
  clamp keeps it monotone and deterministic;
* **counter rollups** — every span counter (``items``, ``steps``,
  ``busy_ms``, ...) summed per path.

Aggregation is keyed by the *stack path* (root name down to the span's
name, e.g. ``query;expand:hole``), so the same phase reached through
different parents stays distinct.  Everything is computed from the
plain span dicts the tracer exports — profiling a live tracer, a
``QueryOutcome.trace``, a run-log query record, or a saved NDJSON file
all go through the same arithmetic, which is what lets the round-trip
tests demand identical totals from every surface.

Export formats:

* :meth:`Profile.rows` / :meth:`Profile.render` — a text table sorted
  by self time (the ``repro profile`` output);
* :meth:`Profile.to_collapsed` — collapsed-stack lines
  (``query;expand:hole 1234``, value = self time in microseconds),
  the input format of Brendan Gregg's ``flamegraph.pl`` and every
  compatible viewer;
* :meth:`Profile.to_dict` — JSON-ready.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Tuple


class Profile:
    """Per-stack-path time and counter aggregation over span trees."""

    def __init__(self) -> None:
        #: path tuple -> {"calls", "inclusive_ms", "self_ms", "counters"}
        self._nodes: Dict[Tuple[str, ...], Dict[str, Any]] = {}
        #: how many traces (span trees) were aggregated
        self.traces = 0

    # ------------------------------------------------------------------
    # aggregation
    # ------------------------------------------------------------------
    def add_trace(self, spans: Iterable[dict]) -> "Profile":
        """Fold one exported span tree (a list of span dicts) in.

        Open spans (``duration_ms is None`` — a tracer that was never
        finished) contribute their calls and counters with zero time.
        Returns ``self`` for chaining.
        """
        spans = [s for s in spans if s.get("kind", "span") == "span"]
        if not spans:
            return self
        self.traces += 1
        by_id = {span["span"]: span for span in spans}

        paths: Dict[int, Tuple[str, ...]] = {}

        def path_of(span: dict) -> Tuple[str, ...]:
            cached = paths.get(span["span"])
            if cached is not None:
                return cached
            parent = span["parent"]
            if parent is None or parent not in by_id:
                path: Tuple[str, ...] = (span["name"],)
            else:
                path = path_of(by_id[parent]) + (span["name"],)
            paths[span["span"]] = path
            return path

        child_ms: Dict[int, float] = {}
        for span in spans:
            parent = span["parent"]
            if parent in by_id and span["duration_ms"] is not None:
                child_ms[parent] = child_ms.get(parent, 0.0) + span["duration_ms"]

        for span in spans:
            node = self._nodes.setdefault(path_of(span), {
                "calls": 0, "inclusive_ms": 0.0, "self_ms": 0.0,
                "counters": {},
            })
            node["calls"] += 1
            duration = span["duration_ms"]
            if duration is not None:
                node["inclusive_ms"] += duration
                node["self_ms"] += max(
                    0.0, duration - child_ms.get(span["span"], 0.0))
            counters = node["counters"]
            for name, value in span.get("counters", {}).items():
                counters[name] = counters.get(name, 0) + value
        return self

    def add_run_log(self, records: Iterable[dict]) -> "Profile":
        """Fold in every traced query record of a run log."""
        for record in records:
            if record.get("kind") == "query" and record.get("spans"):
                self.add_trace(record["spans"])
        return self

    def merge(self, other: "Profile") -> "Profile":
        for path, node in other._nodes.items():
            mine = self._nodes.setdefault(path, {
                "calls": 0, "inclusive_ms": 0.0, "self_ms": 0.0,
                "counters": {},
            })
            mine["calls"] += node["calls"]
            mine["inclusive_ms"] += node["inclusive_ms"]
            mine["self_ms"] += node["self_ms"]
            for name, value in node["counters"].items():
                mine["counters"][name] = mine["counters"].get(name, 0) + value
        self.traces += other.traces
        return self

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def total_ms(self) -> float:
        """Total inclusive time of the root spans (depth-1 paths)."""
        return sum(node["inclusive_ms"]
                   for path, node in self._nodes.items() if len(path) == 1)

    def phase_totals(self) -> Dict[str, float]:
        """Inclusive time per pipeline phase, the taxonomy the diff
        engine attributes regressions to: the direct children of the
        ``query`` root (``preflight`` / ``cache`` / ``root_pool`` /
        ``expand:<kind>`` / ``dedup`` / ``collect``) plus non-``query``
        roots (the session's ``parse``)."""
        totals: Dict[str, float] = {}
        for path, node in self._nodes.items():
            if len(path) == 1 and path[0] != "query":
                name = path[0]
            elif len(path) == 2 and path[0] == "query":
                name = path[1]
            else:
                continue
            totals[name] = totals.get(name, 0.0) + node["inclusive_ms"]
        return {name: round(totals[name], 4) for name in sorted(totals)}

    def rows(self) -> List[Dict[str, Any]]:
        """One dict per stack path, sorted by self time (descending),
        ties broken by path for determinism."""
        rows = []
        for path, node in self._nodes.items():
            rows.append({
                "path": ";".join(path),
                "name": path[-1],
                "depth": len(path) - 1,
                "calls": node["calls"],
                "inclusive_ms": round(node["inclusive_ms"], 4),
                "self_ms": round(node["self_ms"], 4),
                "counters": {k: node["counters"][k]
                             for k in sorted(node["counters"])},
            })
        rows.sort(key=lambda row: (-row["self_ms"], row["path"]))
        return rows

    # ------------------------------------------------------------------
    # export
    # ------------------------------------------------------------------
    def to_collapsed(self) -> List[str]:
        """Collapsed-stack lines (``a;b;c <self-time-in-us>``), sorted by
        path — feed them to any flamegraph renderer."""
        return [
            "{} {}".format(";".join(path),
                           int(round(node["self_ms"] * 1000.0)))
            for path, node in sorted(self._nodes.items())
        ]

    def render(self, limit: Optional[int] = None) -> List[str]:
        """A text table of the hottest stack paths (all of them when
        ``limit`` is None)."""
        rows = self.rows()
        if limit is not None:
            rows = rows[:limit]
        lines = ["profile: {} trace{}, {:.2f} ms total".format(
            self.traces, "" if self.traces == 1 else "s", self.total_ms)]
        lines.append("  {:<40s}{:>7s}{:>12s}{:>12s}".format(
            "path", "calls", "incl ms", "self ms"))
        for row in rows:
            lines.append("  {:<40s}{:>7d}{:>12.2f}{:>12.2f}".format(
                row["path"][:40], row["calls"],
                row["inclusive_ms"], row["self_ms"]))
        return lines

    def to_dict(self) -> Dict[str, Any]:
        return {
            "traces": self.traces,
            "total_ms": round(self.total_ms, 4),
            "phases": self.phase_totals(),
            "nodes": {row["path"]: {
                "calls": row["calls"],
                "inclusive_ms": row["inclusive_ms"],
                "self_ms": row["self_ms"],
                "counters": row["counters"],
            } for row in self.rows()},
        }


def profile_traces(traces: Iterable[Iterable[dict]]) -> Profile:
    """A :class:`Profile` over many exported span trees (e.g. the
    ``QueryRecord.trace`` lists of a session history)."""
    profile = Profile()
    for spans in traces:
        if spans:
            profile.add_trace(spans)
    return profile


def profile_run_log(records: Iterable[dict]) -> Profile:
    """A :class:`Profile` over the traced query records of a run log."""
    return Profile().add_run_log(records)
