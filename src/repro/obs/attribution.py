"""Per-candidate ranking attribution.

The paper's ranking function (Figure 7) is a sum of six independent
terms — type distance (t), abstract types (a), depth (d), in-scope
static (s), common namespaces (n), matching name (m) — each gated by
exactly one :class:`~repro.engine.ranking.RankingConfig` switch.  A
:class:`ScoreBreakdown` records every *enabled* term's total
contribution for one completion; the contributions sum to the ranked
score exactly (scoring under each single-feature configuration, the
same decomposition :meth:`Ranker.explain` computes — a tested
invariant over every golden completion).

Breakdowns are recomputed from the expression, never captured from the
search: they are therefore identical whether the completion came out
of a cold search or a cache replay.  ``cached`` marks the replay case
so ``--explain`` output can say where the completion came from.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Tuple


@dataclass(frozen=True)
class ScoreBreakdown:
    """One completion's score decomposed into per-feature totals.

    ``terms`` maps feature names (``type_distance``, ``depth``, …) to
    that feature's total contribution; only enabled features appear.
    ``total`` is the full ranked score; ``terms`` sums to it.
    ``cached`` is True when the completion was replayed from the
    cross-query cache (the breakdown itself is recomputed either way).
    """

    terms: Dict[str, int] = field(default_factory=dict)
    total: int = 0
    cached: bool = False

    @property
    def term_sum(self) -> int:
        return sum(self.terms.values())

    @property
    def consistent(self) -> bool:
        """Do the terms sum exactly to the ranked score?"""
        return self.term_sum == self.total

    def to_dict(self) -> Dict[str, Any]:
        return {
            "terms": {name: self.terms[name] for name in sorted(self.terms)},
            "total": self.total,
            "cached": self.cached,
        }

    def rows(self) -> Tuple[Tuple[str, int], ...]:
        """(feature, contribution) pairs, largest contribution first
        (ties broken by name) — the display order of ``--explain``."""
        return tuple(sorted(self.terms.items(), key=lambda kv: (-kv[1], kv[0])))

    @classmethod
    def from_ranker(cls, ranker, expr, cached: bool = False) -> "ScoreBreakdown":
        """Decompose ``expr``'s score with an engine ranker.

        ``ranker`` is a :class:`~repro.engine.ranking.Ranker` (duck
        typed to avoid an import cycle: the engine imports this module).
        """
        return cls(
            terms=dict(ranker.explain(expr)),
            total=ranker.score(expr),
            cached=cached,
        )
