"""Trace/bench diffing: attribute a latency regression to a phase.

``diff_runs(old, new)`` takes two run artifacts — structured run logs
(:mod:`repro.obs.runlog` records) or ``BENCH_*.json`` documents — and
produces a :class:`RunDiff`: per-phase latency deltas over the span
taxonomy (``parse`` / ``preflight`` / ``cache`` / ``root_pool`` /
``expand:<kind>`` / ``dedup`` / ``collect``), sorted worst-first, with
the top regressed phase called out.  ``render_markdown`` turns that
into the regression-attribution report the CI perf gate uploads, so a
red gate says *which phase* regressed, not just that something did.

Inputs are duck-typed by shape, not imported types, keeping this module
below both the engine and the eval layer:

* a dict with ``format == "repro-bench"`` — phase totals are the sum of
  each workload's ``phases`` map (workloads without one are noted; the
  seed baseline predates phase profiles);
* a list of run-log records (leading ``kind == "run"`` manifest) —
  phase totals come from a :class:`~repro.obs.profile.Profile` over the
  embedded span trees, query counts/latency from the query records;
* a path or NDJSON/JSON text via :func:`load_run_artifact`, which
  sniffs the two formats.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple, Union

from .profile import profile_run_log


@dataclass
class PhaseDelta:
    """One phase's latency movement between two runs."""

    name: str
    old_ms: float
    new_ms: float

    @property
    def delta_ms(self) -> float:
        return self.new_ms - self.old_ms

    @property
    def ratio(self) -> float:
        """Relative growth (0.0 when there is no baseline time)."""
        if self.old_ms <= 0:
            return 0.0
        return self.new_ms / self.old_ms - 1.0


@dataclass
class RunDiff:
    """The phase-attributed difference between two run artifacts."""

    old_label: str
    new_label: str
    phases: List[PhaseDelta]
    old_total_ms: float
    new_total_ms: float
    old_queries: int
    new_queries: int
    notes: List[str] = field(default_factory=list)

    @property
    def top_regression(self) -> Optional[PhaseDelta]:
        """The phase with the largest positive latency delta, or None
        when no phase got slower."""
        worst = max(self.phases, key=lambda p: p.delta_ms, default=None)
        if worst is None or worst.delta_ms <= 0:
            return None
        return worst

    def summary(self) -> str:
        top = self.top_regression
        if top is None:
            return "no phase regressed"
        return "top regressed phase: {} ({:+.2f} ms)".format(
            top.name, top.delta_ms)


# ----------------------------------------------------------------------
# normalisation
# ----------------------------------------------------------------------

RunArtifact = Union[Dict[str, Any], List[Dict[str, Any]]]


def _is_bench(artifact: Any) -> bool:
    return isinstance(artifact, dict) and artifact.get("format") == "repro-bench"


def _is_run_log(artifact: Any) -> bool:
    return (isinstance(artifact, list) and bool(artifact)
            and isinstance(artifact[0], dict)
            and artifact[0].get("kind") == "run")


def _bench_summary(
    document: Dict[str, Any],
) -> Tuple[str, Dict[str, float], float, int, List[str]]:
    label = str(document.get("label", "bench"))
    totals: Dict[str, float] = {}
    total_ms = 0.0
    queries = 0
    unprofiled: List[str] = []
    for workload in document.get("workloads", []):
        total_ms += float(workload.get("p95_ms", 0.0))
        queries += int(workload.get("queries", 0))
        phases = workload.get("phases")
        if not phases:
            unprofiled.append(str(workload.get("name")))
            continue
        for name, value in phases.items():
            totals[name] = totals.get(name, 0.0) + float(value)
    notes = []
    if unprofiled:
        notes.append("bench {!r}: no phase profile for {}".format(
            label, ", ".join(unprofiled)))
    return label, totals, total_ms, queries, notes


def _runlog_summary(
    records: List[Dict[str, Any]],
) -> Tuple[str, Dict[str, float], float, int, List[str]]:
    manifest = records[0]
    label = str(manifest.get("label", "run"))
    totals = profile_run_log(records).phase_totals()
    queries = [r for r in records if r.get("kind") == "query"]
    total_ms = sum(float(r.get("elapsed_ms", 0.0)) for r in queries)
    notes = []
    if not totals and queries:
        notes.append("run {!r}: queries carry no span trees "
                     "(run was not traced)".format(label))
    return label, totals, total_ms, len(queries), notes


def _summarise(
    artifact: RunArtifact,
) -> Tuple[str, Dict[str, float], float, int, List[str]]:
    if _is_bench(artifact):
        return _bench_summary(artifact)
    if _is_run_log(artifact):
        return _runlog_summary(artifact)
    raise ValueError(
        "not a run artifact: expected a repro-bench document or a "
        "repro-runlog record list")


def diff_runs(old: RunArtifact, new: RunArtifact) -> RunDiff:
    """Phase-attributed latency diff of two run artifacts (each a bench
    document or a run-log record list — mixing the two is allowed; the
    phase taxonomy is shared)."""
    old_label, old_phases, old_total, old_queries, old_notes = _summarise(old)
    new_label, new_phases, new_total, new_queries, new_notes = _summarise(new)
    notes = old_notes + new_notes
    if bool(old_phases) != bool(new_phases):
        # exactly one side has phase totals: a delta table would compare
        # every phase against a zero baseline and attribute the entire
        # total to whichever phase happens to be largest — say so
        # instead, matching the bench gate's per-workload fallback
        bare = old_label if not old_phases else new_label
        notes.append(
            "no phase profile on {!r}; cannot attribute the latency "
            "delta to phases".format(bare))
        deltas: List[PhaseDelta] = []
    else:
        deltas = [
            PhaseDelta(name, round(old_phases.get(name, 0.0), 4),
                       round(new_phases.get(name, 0.0), 4))
            for name in sorted(set(old_phases) | set(new_phases))
        ]
        deltas.sort(key=lambda p: (-p.delta_ms, p.name))
    return RunDiff(
        old_label=old_label,
        new_label=new_label,
        phases=deltas,
        old_total_ms=round(old_total, 4),
        new_total_ms=round(new_total, 4),
        old_queries=old_queries,
        new_queries=new_queries,
        notes=notes,
    )


def top_phase_delta(
    old_phases: Optional[Dict[str, float]],
    new_phases: Optional[Dict[str, float]],
) -> Optional[PhaseDelta]:
    """The worst phase between two raw phase maps (either may be
    missing), the per-workload attribution ``compare_bench`` prints
    under a regressed line.  None when attribution is impossible or no
    phase got slower."""
    if not old_phases or not new_phases:
        return None
    diff = diff_runs(
        {"format": "repro-bench", "label": "old",
         "workloads": [{"name": "w", "phases": old_phases}]},
        {"format": "repro-bench", "label": "new",
         "workloads": [{"name": "w", "phases": new_phases}]},
    )
    return diff.top_regression


# ----------------------------------------------------------------------
# loading
# ----------------------------------------------------------------------

def parse_run_artifact(text: str) -> RunArtifact:
    """Parse artifact text: a JSON bench document or NDJSON run log."""
    stripped = text.strip()
    if not stripped:
        raise ValueError("empty run artifact")
    try:
        document = json.loads(stripped)
    except json.JSONDecodeError:
        document = None
    if _is_bench(document):
        return document
    from .runlog import read_run_log

    return read_run_log(text)


def load_run_artifact(path: str) -> RunArtifact:
    """Load a run artifact file, sniffing bench JSON vs. run-log NDJSON."""
    with open(path) as handle:
        text = handle.read()
    try:
        return parse_run_artifact(text)
    except ValueError as error:
        raise ValueError("{}: {}".format(path, error))


# ----------------------------------------------------------------------
# rendering
# ----------------------------------------------------------------------

def render_text(diff: RunDiff) -> List[str]:
    """Terminal-friendly summary lines (the ``repro diff`` output)."""
    lines = ["diff {!r} -> {!r}".format(diff.old_label, diff.new_label)]
    lines.append("  queries: {} -> {}; total {:.2f} ms -> {:.2f} ms".format(
        diff.old_queries, diff.new_queries,
        diff.old_total_ms, diff.new_total_ms))
    if diff.phases:
        lines.append("  {:<28s}{:>12s}{:>12s}{:>12s}".format(
            "phase", "old ms", "new ms", "delta ms"))
        for phase in diff.phases:
            lines.append("  {:<28s}{:>12.2f}{:>12.2f}{:>+12.2f}".format(
                phase.name[:28], phase.old_ms, phase.new_ms, phase.delta_ms))
    lines.append("  " + diff.summary())
    for note in diff.notes:
        lines.append("  note: {}".format(note))
    return lines


def render_markdown(diff: RunDiff) -> str:
    """The regression-attribution report CI uploads as an artifact."""
    out = ["# Regression attribution: {!r} vs {!r}".format(
        diff.old_label, diff.new_label), ""]
    out.append("| | old | new |")
    out.append("|---|---|---|")
    out.append("| queries | {} | {} |".format(
        diff.old_queries, diff.new_queries))
    out.append("| total latency | {:.2f} ms | {:.2f} ms |".format(
        diff.old_total_ms, diff.new_total_ms))
    out.append("")
    top = diff.top_regression
    if top is not None:
        out.append("**{}** — {:.2f} ms → {:.2f} ms ({:+.2f} ms)".format(
            diff.summary(), top.old_ms, top.new_ms, top.delta_ms))
    else:
        out.append("No phase regressed.")
    out.append("")
    if diff.phases:
        out += ["## Phase deltas (worst first)", ""]
        out.append("| phase | old ms | new ms | delta ms | growth |")
        out.append("|---|---|---|---|---|")
        for phase in diff.phases:
            growth = ("n/a" if phase.old_ms <= 0
                      else "{:+.1f}%".format(100.0 * phase.ratio))
            out.append(
                "| `{}` | {:.2f} | {:.2f} | {:+.2f} | {} |".format(
                    phase.name, phase.old_ms, phase.new_ms,
                    phase.delta_ms, growth))
        out.append("")
    if diff.notes:
        out += ["## Notes", ""]
        out += ["- {}".format(note) for note in diff.notes]
        out.append("")
    return "\n".join(out)
