"""Baselines the paper compares against: Intellisense and Prospector."""

from .intellisense import intellisense_rank, member_names
from .prospector import ProspectorSearch

__all__ = ["ProspectorSearch", "intellisense_rank", "member_names"]
