"""The Intellisense model of Sec. 5.1 (Figures 11 and 12).

"We modeled Intellisense as being given the receiver (or receiver type for
static calls) and listing its members in alphabetic order. [...] It was
considered to list only instance members for instance receivers and only
static members for static receivers."  The rank of the intended method is
its position in that alphabetic member list.
"""

from __future__ import annotations

from typing import List, Optional

from ..codemodel.members import Method
from ..codemodel.typesystem import TypeSystem
from ..lang.ast import Call


def member_names(ts: TypeSystem, method: Method) -> List[str]:
    """The alphabetised member list Intellisense would display for the
    intended call's receiver."""
    declaring = method.declaring_type
    assert declaring is not None
    names = set()
    if method.is_static:
        static_fields, static_methods = ts.static_members(declaring)
        for field in static_fields:
            names.add(field.name)
        for static_method in static_methods:
            names.add(static_method.name)
    else:
        for field in ts.instance_lookups(declaring):
            names.add(field.name)
        for instance_method in ts.instance_methods(declaring):
            names.add(instance_method.name)
    return sorted(names)


def intellisense_rank(ts: TypeSystem, call: Call) -> Optional[int]:
    """1-based alphabetic rank of the called method in its receiver's
    member list."""
    names = member_names(ts, call.method)
    try:
        return names.index(call.method.name) + 1
    except ValueError:  # pragma: no cover - method always lists itself
        return None
