"""A Prospector-style jungloid search (Sec. 2.3's comparison system).

Mandelin et al.'s Prospector answers "convert a value of type A into a value
of type B" with a chain of lookups and calls (a *jungloid*).  The paper
contrasts partial expressions with it; we include a faithful small version
as a baseline: BFS over single-step conversions —

* instance field / property lookup,
* zero-argument instance method call,
* one-argument static method call (the value as the argument),

shortest chains first ("shorter jungloids tend to be more likely to be
correct").  Chains crossing namespace boundaries rank after chains that stay
within one namespace, Prospector's other ranking idea.
"""

from __future__ import annotations

from typing import Iterator, List, Tuple

from ..codemodel.typesystem import TypeSystem
from ..codemodel.types import TypeDef
from ..lang.ast import Call, Expr, FieldAccess, Var


class ProspectorSearch:
    """Jungloid search over a library universe."""

    def __init__(self, ts: TypeSystem, max_length: int = 4) -> None:
        self.ts = ts
        self.max_length = max_length
        self._static_converters = self._collect_static_converters()

    def _collect_static_converters(self):
        converters = {}
        for method in self.ts.all_methods():
            if not method.is_static or len(method.params) != 1:
                continue
            if method.return_type is None:
                continue
            key = method.params[0].type.full_name
            converters.setdefault(key, []).append(method)
        return converters

    def _steps(self, expr: Expr) -> Iterator[Expr]:
        source = expr.type
        if source is None:
            return
        for member in self.ts.instance_lookups(source):
            yield FieldAccess(expr, member)
        for method in self.ts.zero_arg_instance_methods(source):
            if method.return_type is not None:
                yield Call(method, (expr,))
        seen = set()
        for holder in self.ts.supertype_closure(source):
            for method in self._static_converters.get(holder.full_name, ()):
                if id(method) not in seen:
                    seen.add(id(method))
                    yield Call(method, (expr,))

    def query(
        self, source_name: str, source: TypeDef, target: TypeDef, n: int = 10
    ) -> List[Expr]:
        """Jungloids converting a ``source``-typed variable to ``target``,
        shortest (then namespace-local) first."""
        start = Var(source_name, source)
        results: List[Tuple[int, int, int, Expr]] = []
        frontier: List[Expr] = [start]
        order = 0
        for length in range(0, self.max_length + 1):
            for expr in frontier:
                expr_type = expr.type
                if expr_type is not None and self.ts.implicitly_converts(
                    expr_type, target
                ):
                    crossings = self._namespace_crossings(expr)
                    results.append((length, crossings, order, expr))
                    order += 1
            if len(results) >= n * 3:
                break
            frontier = [
                successor
                for expr in frontier
                for successor in self._steps(expr)
            ]
            if len(frontier) > 20000:  # defensive cap on fan-out
                frontier = frontier[:20000]
        results.sort(key=lambda item: (item[0], item[1], item[2]))
        return [expr for _l, _c, _o, expr in results[:n]]

    def _namespace_crossings(self, expr: Expr) -> int:
        namespaces = set()
        node = expr
        while True:
            node_type = node.type
            if node_type is not None and not node_type.is_primitive:
                namespaces.add(node_type.namespace_parts[:1])
            if isinstance(node, FieldAccess):
                node = node.base
            elif isinstance(node, Call) and node.args:
                node = node.args[0]
            else:
                break
        return max(0, len(namespaces) - 1)
