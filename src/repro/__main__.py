"""Command-line entry point.

    python -m repro repl --universe paint
    python -m repro complete --universe paint \
        --let img=PaintDotNet.Document --let size=System.Drawing.Size \
        "?({img, size})"
    python -m repro complete --universe paint --trace trace.ndjson --explain "?"
    python -m repro lint --universe paint --json
    python -m repro stats --universe paint
    python -m repro stats --validate-trace trace.ndjson
    python -m repro stats --validate-runlog runlog.ndjson
    python -m repro eval [--full]
    python -m repro bench --quick --compare benchmarks/baseline/BENCH_seed.json
    python -m repro fuzz --seed 7 --iterations 50 --chaos
    python -m repro fuzz --replay FUZZ_REPRO_seed7_iter3.json
    python -m repro serve --universes paint,bcl --port 8137 \
        --slo p95_ms=50:error_rate=0.01 --fault-plan chaos.json
    python -m repro loadtest --universe paint --n-workers 4 --duration 5
    python -m repro stats --url http://127.0.0.1:8137 --validate
    python -m repro stats --url http://127.0.0.1:8137 --watch 2
    python -m repro slo serve-logs/serve_bcl.ndjson --slo p95_ms=50
    python -m repro profile --universe paint --flame flame.txt
    python -m repro diff BENCH_old.json BENCH_new.json --markdown regression.md
    python -m repro report -o EVAL_REPORT.md --run-log runlog.ndjson
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .errors import TRUNCATION_EXIT, exit_code_for
from .ide.session import CompletionSession
from .ide.workspace import Workspace

#: exit codes (documented in docs/RESILIENCE.md and docs/ANALYSIS.md):
#: 0 success, 1 parse error / error-severity lint findings, 2 usage error
#: (bad flag values, unknown types or universes), 3 deadline truncation,
#: 4 step-budget/cancellation truncation.  The values come from the
#: canonical error table in :mod:`repro.errors` — the same table the
#: serving protocol maps onto HTTP statuses, so both surfaces agree.
EXIT_OK = 0
EXIT_PARSE_ERROR = exit_code_for("parse_error")
EXIT_LINT_ERRORS = exit_code_for("parse_error")
EXIT_USAGE = exit_code_for("bad_request")
EXIT_TIMEOUT = TRUNCATION_EXIT["timeout"]
EXIT_BUDGET = TRUNCATION_EXIT["budget"]


def _open_universe(key: str, write):
    """Resolve ``--universe``, or print a one-line usage error.

    Returns the workspace or ``None``; unknown keys are a usage problem
    (exit 2), reported with the list of builtin universes rather than an
    argparse abort or a traceback.
    """
    try:
        return Workspace.builtin(key)
    except ValueError:
        write("error: unknown universe {!r}; choose one of: {}".format(
            key, ", ".join(sorted(Workspace.BUILTIN))))
        return None


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Type-directed completion of partial expressions "
                    "(PLDI 2012 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    repl = sub.add_parser("repl", help="interactive query loop")
    repl.add_argument("--universe", default="paint")

    complete = sub.add_parser(
        "complete", help="run one or more queries and exit"
    )
    complete.add_argument("queries", nargs="+", metavar="query",
                          help="partial expression(s); several queries "
                               "run as one batch against shared warm "
                               "indexes and the cross-query cache")
    complete.add_argument("--universe", default="paint")
    complete.add_argument("--let", action="append", default=[],
                          metavar="NAME=TYPE",
                          help="declare a local (repeatable)")
    complete.add_argument("--this", default=None, metavar="TYPE")
    complete.add_argument("--expect", default=None, metavar="TYPE",
                          help="filter results by type ('void' allowed)")
    complete.add_argument("--keyword", default=None,
                          help="filter unknown-call methods by name")
    complete.add_argument("-n", type=int, default=10)
    complete.add_argument("--timeout-ms", type=float, default=None,
                          metavar="MS",
                          help="wall-clock deadline; best-so-far results "
                               "are printed and exit code 3 signals the "
                               "truncation")
    complete.add_argument("--budget", type=int, default=None, metavar="STEPS",
                          help="expansion-step budget; best-so-far results "
                               "are printed and exit code 4 signals the "
                               "truncation")
    complete.add_argument("--trace", nargs="?", const="-", default=None,
                          metavar="PATH",
                          help="trace each query and write the NDJSON "
                               "span records to PATH ('-' or no value: "
                               "print them); see docs/OBSERVABILITY.md")
    complete.add_argument("--explain", action="store_true",
                          help="show each suggestion's ranking-term "
                               "breakdown (the terms sum to its score)")

    lint = sub.add_parser(
        "lint",
        help="static diagnostics for a universe and (optionally) a query",
        description="Run the RA0xx diagnostic passes (docs/ANALYSIS.md): "
                    "code-model validation of the universe, optional "
                    "stream-sanitizer probes, and pre-flight analysis of "
                    "a partial-expression query.  Exit 0 when clean, 1 "
                    "when error-severity findings exist, 2 on usage "
                    "errors.",
    )
    lint.add_argument("--universe", default="paint")
    lint.add_argument("--source", default=None, metavar="FILE.cs",
                      help="lint a universe loaded from a C#-subset "
                           "source file instead of a builtin")
    lint.add_argument("--query", default=None, metavar="PE",
                      help="also pre-flight this partial expression "
                           "(satisfiability, dead ranking terms)")
    lint.add_argument("--let", action="append", default=[],
                      metavar="NAME=TYPE",
                      help="declare a query-scope local (repeatable)")
    lint.add_argument("--this", default=None, metavar="TYPE")
    lint.add_argument("--expect", default=None, metavar="TYPE",
                      help="expected result type for --query "
                           "('void' allowed)")
    lint.add_argument("--keyword", default=None,
                      help="unknown-call name filter for --query")
    lint.add_argument("--sanitize", action="store_true",
                      help="also run the stream-invariant probe queries")
    lint.add_argument("--json", action="store_true",
                      help="machine-readable output")

    impact = sub.add_parser(
        "impact",
        help="what would editing a type invalidate?",
        description="Query the whole-universe dependency graph "
                    "(docs/ANALYSIS.md): given one or more types, report "
                    "the reverse-dependency closure an edit can touch — "
                    "affected types, global root pools, indexed methods, "
                    "and (after a battery warm-up) how much of the "
                    "completion cache would be invalidated.  Exit 0 on "
                    "success, 2 on usage errors.",
    )
    impact.add_argument("--universe", default="paint")
    impact.add_argument("--type", action="append", default=[],
                        dest="types", metavar="NAME", required=True,
                        help="type to analyze (repeatable; full name, "
                             "unique simple name, or primitive keyword)")
    impact.add_argument("--warm", action="store_true",
                        help="run the universe's pinned query battery "
                             "first so the report includes live "
                             "cache-entry counts")
    impact.add_argument("--json", action="store_true",
                        help="machine-readable output")

    census = sub.add_parser(
        "census", help="print the corpus census for the seven projects"
    )
    census.add_argument("--scale", type=float, default=1.0)

    dump = sub.add_parser(
        "dump-universe", help="export a bundled universe as JSON"
    )
    dump.add_argument("--universe", default="paint")
    dump.add_argument("-o", "--output", required=True, metavar="PATH")

    bench = sub.add_parser(
        "bench",
        help="run the pinned performance workload",
        description="Run the pinned bench workload (paper speed queries, "
                    "synthetic scaling universes, and a repeated-query "
                    "cache measurement) and write a schema-versioned "
                    "BENCH_<label>.json.  With two --compare paths, skip "
                    "the run and just diff the files.  Exit 0 ok, 1 on a "
                    "p95 regression over 20%, 2 on bad input.  See "
                    "docs/PERFORMANCE.md.",
    )
    bench.add_argument("--label", default="local",
                       help="label recorded in the document (default "
                            "'local')")
    bench.add_argument("-o", "--output", default=None, metavar="PATH",
                       help="write the document here (default "
                            "BENCH_<label>.json in the current directory)")
    bench.add_argument("--quick", action="store_true",
                       help="fewer repeats and smaller scaling universes "
                            "(the CI smoke configuration)")
    bench.add_argument("--compare", nargs="+", default=None,
                       metavar="BENCH.json",
                       help="one path: run and compare against it as the "
                            "baseline; two paths: compare old vs. new "
                            "without running")
    bench.add_argument("--run-log", default=None, metavar="PATH",
                       help="also write the structured NDJSON run log "
                            "of the bench run")
    bench.add_argument("--seed", type=int, default=None,
                       help="seed recorded in the document and the "
                            "run-log manifest (the bench workload is "
                            "pinned; the seed stamps provenance for "
                            "reproducibility tooling)")

    fuzz = sub.add_parser(
        "fuzz",
        help="rank-stability fuzzing with differential oracles",
        description="Apply seeded semantic-preserving universe "
                    "transformations and differentially check that the "
                    "ranked completion sets are invariant — including "
                    "under step-budget truncation (prefix consistency), "
                    "injected faults (--chaos: degraded, never silently "
                    "wrong) and in-place mutations against a warm cache. "
                    "A failing iteration is shrunk to a minimal "
                    "transform sequence + query and written as a "
                    "replayable repro file.  Exit 0 when all iterations "
                    "pass, 1 on a counterexample, 2 on usage errors.  "
                    "See docs/FUZZING.md.",
    )
    fuzz.add_argument("--seed", type=int, default=0,
                      help="root seed; everything the run does is a "
                           "deterministic function of it (default 0)")
    fuzz.add_argument("--iterations", type=int, default=50,
                      help="iterations to run (default 50)")
    fuzz.add_argument("--chaos", action="store_true",
                      help="also schedule fault-injection iterations "
                           "across all query-path sites")
    fuzz.add_argument("--transforms", default=None, metavar="FAM[,FAM...]",
                      help="restrict to these transformation families "
                           "(default: all; see docs/FUZZING.md)")
    fuzz.add_argument("--replay", default=None, metavar="REPRO.json",
                      help="re-run a saved counterexample instead of "
                           "fuzzing; exit 1 if it still reproduces, 0 "
                           "if it passes")
    fuzz.add_argument("--universe", default=None,
                      help="restrict to one builtin universe (default: "
                           "rotate through all)")
    fuzz.add_argument("--out", default=".", metavar="DIR",
                      help="directory for minimized repro files "
                           "(default: current directory)")
    fuzz.add_argument("--run-log", default=None, metavar="PATH",
                      help="write the structured NDJSON run log (seed "
                           "in the manifest, one event per iteration)")

    serve = sub.add_parser(
        "serve",
        help="run the completion server (multi-tenant HTTP/JSON)",
        description="Serve named workspaces over the v1 HTTP/JSON "
                    "protocol (docs/SERVING.md): POST /v1/complete, "
                    "/v1/complete_many, /v1/explain; GET /v1/stats, "
                    "/v1/healthz.  One warm engine per workspace with "
                    "session affinity; per-request deadlines map onto "
                    "the QueryBudget machinery and overloaded tenants "
                    "shed with structured 429/504 errors.  Runs until "
                    "interrupted; Ctrl-C drains in-flight requests.",
    )
    serve.add_argument("--universes", default="paint,geometry,bcl",
                       metavar="KEY[,KEY...]",
                       help="builtin universes to serve as workspaces "
                            "(default: paint,geometry,bcl)")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8137,
                       help="listen port (default 8137; 0 = ephemeral)")
    serve.add_argument("--default-deadline-ms", type=float, default=None,
                       metavar="MS",
                       help="deadline applied to requests that carry "
                            "none (default: unlimited)")
    serve.add_argument("--run-log-dir", default=None, metavar="DIR",
                       help="stream each tenant's NDJSON run log to "
                            "DIR/serve_<workspace>.ndjson")
    serve.add_argument("--pack", action="append", default=None,
                       metavar="PATH", dest="packs",
                       help="mount a tenant from a pack artifact "
                            "(repeatable); verified and restored without "
                            "an index rebuild, served under its recorded "
                            "universe name")
    serve.add_argument("--slo", default=None, metavar="SPEC",
                       help="track service-level objectives live "
                            "(':'-separated, e.g. "
                            "p95_ms=50:error_rate=0.01:shed_rate=0.2); "
                            "verdicts and burn rates appear in "
                            "/v1/healthz and /v1/metrics")
    serve.add_argument("--fault-plan", default=None, metavar="JSON",
                       help="mount chaos-through-serve from a JSON chaos "
                            "spec (a path or an inline object with seed/"
                            "rate/sites); every admitted request draws a "
                            "deterministic seeded fault plan")

    pack = sub.add_parser(
        "pack",
        help="build / inspect / verify persistent universe packs",
        description="Persistent universe packs (docs/ARTIFACTS.md): "
                    "versioned on-disk artifacts snapshotting a universe "
                    "plus its derived engine state (method-index "
                    "buckets, reachability walks, the dependency graph "
                    "with closures and abstract-type partitions) so a "
                    "cold process answers its first query in "
                    "milliseconds.  Artifacts are checksum- and "
                    "fingerprint-verified on load; a damaged pack fails "
                    "with the stable code pack_corrupt, a mismatched one "
                    "with pack_stale.",
    )
    packsub = pack.add_subparsers(dest="pack_command", required=True)
    pack_build = packsub.add_parser(
        "build", help="snapshot a universe source into a pack file")
    pack_build.add_argument(
        "source",
        help="builtin universe key (paint, geometry, bcl) or a "
             "repro-universe / repro-project artifact path")
    pack_build.add_argument("-o", "--output", default=None, metavar="PATH",
                            help="output path (default: <name>.pack)")
    pack_inspect = packsub.add_parser(
        "inspect", help="print a pack's header without decoding the body")
    pack_inspect.add_argument("path")
    pack_inspect.add_argument("--json", action="store_true",
                              help="emit the raw header JSON")
    pack_verify = packsub.add_parser(
        "verify", help="full integrity check: checksum, universe decode, "
                       "fingerprint agreement")
    pack_verify.add_argument("path")
    pack_verify.add_argument("--expect-fingerprint", default=None,
                             metavar="HEX",
                             help="additionally require this universe "
                                  "fingerprint")
    pack_load = packsub.add_parser(
        "load", help="cold-load a pack into a workspace and report the "
                     "wall-clock cost")
    pack_load.add_argument("path")

    loadtest = sub.add_parser(
        "loadtest",
        help="multi-worker load generator against a completion server",
        description="Replay a universe's golden battery from N worker "
                    "threads for a fixed duration and write a "
                    "schema-versioned BENCH_serve_<label>.json (p50/p95 "
                    "latency, throughput, shed rate) that 'repro diff' "
                    "and 'repro bench --compare' understand.  With no "
                    "--url an in-process server is spawned on an "
                    "ephemeral port.  Shed requests (tiny deadlines, "
                    "overload) are counted, not fatal.  Exit 0 on a "
                    "completed run, 1 when every request errored, 2 on "
                    "bad input.  See docs/SERVING.md.",
    )
    loadtest.add_argument("--url", default=None,
                          help="server base URL (default: spawn an "
                               "in-process server)")
    loadtest.add_argument("--universe", default="paint")
    loadtest.add_argument("--n-workers", type=int, default=4)
    loadtest.add_argument("--duration", type=float, default=5.0,
                          metavar="SECONDS")
    loadtest.add_argument("--deadline-ms", type=float, default=None,
                          metavar="MS",
                          help="per-request deadline; queue overflow "
                               "sheds with structured 429/504 errors")
    loadtest.add_argument("--label", default="local")
    loadtest.add_argument("-n", type=int, default=10,
                          help="suggestions per query (default 10)")
    loadtest.add_argument("-o", "--output", default=None, metavar="PATH",
                          help="write the document here (default "
                               "BENCH_serve_<label>.json)")
    loadtest.add_argument("--run-log-dir", default=None, metavar="DIR",
                          help="with a spawned server, stream its "
                               "per-tenant run logs to DIR")
    loadtest.add_argument("--fault-plan", default=None, metavar="JSON",
                          help="with a spawned server, mount "
                               "chaos-through-serve from a JSON chaos "
                               "spec (path or inline); incompatible "
                               "with --url")

    stats = sub.add_parser(
        "stats",
        help="run the pinned query battery and print engine metrics",
        description="Run the universe's pinned query battery against a "
                    "fresh engine and print the observability registry "
                    "(counters + histograms) as JSON.  With --url, "
                    "instead scrape a live server's GET /v1/metrics "
                    "(--validate checks the exposition structurally, "
                    "--watch polls and prints a table).  With "
                    "--validate-trace, instead validate an NDJSON trace "
                    "file against the checked-in schema: exit 0 when "
                    "every record conforms, 1 otherwise.  See "
                    "docs/OBSERVABILITY.md.",
    )
    stats.add_argument("--universe", default="paint")
    stats.add_argument("-n", type=int, default=10)
    stats.add_argument("--validate-trace", default=None, metavar="FILE",
                       help="validate an NDJSON trace file against the "
                            "schema and exit (no battery run)")
    stats.add_argument("--validate-runlog", default=None, metavar="FILE",
                       help="validate an NDJSON run-log file against the "
                            "schema and exit (no battery run)")
    stats.add_argument("--url", default=None,
                       help="scrape a live server's /v1/metrics instead "
                            "of running the battery")
    stats.add_argument("--validate", action="store_true",
                       help="with --url, structurally validate the "
                            "scraped exposition (TYPE lines, cumulative "
                            "buckets, +Inf == _count); exit 1 on any "
                            "problem")
    stats.add_argument("--watch", type=float, default=None, metavar="S",
                       help="poll every S seconds and print a metrics "
                            "table each tick (with --url: scrape; "
                            "without: re-run the battery on one warm "
                            "workspace)")
    stats.add_argument("--watch-count", type=int, default=None, metavar="N",
                       help="stop after N --watch ticks (default: until "
                            "interrupted)")

    slo = sub.add_parser(
        "slo",
        help="offline SLO burn-rate report over a server run log",
        description="Replay the server_request records of a serve run "
                    "log through the multi-window SLO burn-rate math "
                    "(the same the live server's /v1/healthz uses) and "
                    "print the per-window error/shed/latency burn and "
                    "verdicts.  Exit 0 when every objective holds, 1 on "
                    "a breach, 2 on bad input.  See "
                    "docs/OBSERVABILITY.md.",
    )
    slo.add_argument("runlog", metavar="RUNLOG",
                     help="NDJSON run log written by repro serve "
                          "--run-log-dir (or repro loadtest)")
    slo.add_argument("--slo", default=None, metavar="SPEC",
                     help="objective spec, e.g. "
                          "p95_ms=50:error_rate=0.01:shed_rate=0.2 "
                          "(default: p95_ms=50:error_rate=0.01:"
                          "shed_rate=0.20)")
    slo.add_argument("--windows", default=None, metavar="S[,S...]",
                     help="rolling window lengths in seconds (default "
                          "60,300 plus a whole-log window; 'inf' is "
                          "accepted)")
    slo.add_argument("--json", action="store_true",
                     help="emit the raw report JSON")
    slo.add_argument("-o", "--output", default=None, metavar="PATH",
                     help="also write the report JSON here")

    profile = sub.add_parser(
        "profile",
        help="deterministic self-time profile with flamegraph export",
        description="Trace the universe's pinned query battery and print "
                    "the per-span self-time profile (inclusive/self time "
                    "and counters per call path), or — with --from-log — "
                    "profile the traced queries recorded in an NDJSON run "
                    "log instead of running anything.  --flame writes "
                    "collapsed-stack text for any flamegraph renderer.  "
                    "See docs/OBSERVABILITY.md.",
    )
    profile.add_argument("--universe", default="paint")
    profile.add_argument("-n", type=int, default=10)
    profile.add_argument("--from-log", default=None, metavar="RUNLOG",
                         help="profile a run-log file instead of running "
                              "the battery")
    profile.add_argument("--flame", default=None, metavar="PATH",
                         help="write collapsed-stack flamegraph text "
                              "('stack;path self-μs' per line)")
    profile.add_argument("--limit", type=int, default=25,
                         help="rows to print (default 25)")

    diff = sub.add_parser(
        "diff",
        help="attribute the latency delta between two runs to phases",
        description="Compare two run artifacts — BENCH_<label>.json "
                    "documents or NDJSON run logs, in any combination — "
                    "and attribute the latency delta to engine phases "
                    "(parse / preflight / cache / root_pool / "
                    "expand:<kind> / dedup / collect).  --markdown writes "
                    "the regression-attribution report the CI perf gate "
                    "uploads.  See docs/OBSERVABILITY.md.",
    )
    diff.add_argument("old", metavar="OLD", help="baseline artifact")
    diff.add_argument("new", metavar="NEW", help="candidate artifact")
    diff.add_argument("--markdown", default=None, metavar="PATH",
                      help="also write a markdown regression report")

    report = sub.add_parser(
        "report",
        help="run manifest + evaluation figures + phase profile",
        description="Run the full evaluation and render one markdown "
                    "document: the run manifest (git SHA, config "
                    "signature, universe versions), every table and "
                    "figure, and the phase/query timing rollup from the "
                    "structured run log.  The checked-in EVAL_REPORT.md "
                    "is generated this way.",
    )
    report.add_argument("--full", action="store_true",
                        help="no per-project caps (several minutes)")
    report.add_argument("-o", "--output", default=None, metavar="PATH",
                        help="write the markdown here (default: print)")
    report.add_argument("--run-log", default=None, metavar="PATH",
                        help="also write the NDJSON run log")
    report.add_argument("--seed", type=int, default=None,
                        help="seed recorded in the run-log manifest")

    evaluate = sub.add_parser("eval", help="run the paper's evaluation")
    evaluate.add_argument("--full", action="store_true",
                          help="no per-project caps (several minutes)")
    evaluate.add_argument("--markdown", default=None, metavar="PATH",
                          help="write a markdown report instead of text")
    evaluate.add_argument("--save", default=None, metavar="PATH",
                          help="save raw results as JSON (for regression "
                               "tracking)")
    evaluate.add_argument("--compare", default=None, metavar="BASELINE",
                          help="compare this run against a saved baseline")
    evaluate.add_argument("--run-log", default=None, metavar="PATH",
                          help="write the structured NDJSON run log "
                               "(with --markdown / --save / --compare)")
    evaluate.add_argument("--seed", type=int, default=None,
                          help="seed recorded in the run-log manifest")
    return parser


def _run_complete(args: argparse.Namespace, write) -> int:
    workspace = _open_universe(args.universe, write)
    if workspace is None:
        return EXIT_USAGE
    session = CompletionSession(workspace, n=args.n)
    for binding in args.let:
        if "=" not in binding:
            write("bad --let {!r}; expected NAME=TYPE".format(binding))
            return EXIT_USAGE
        name, _, type_name = binding.partition("=")
        try:
            session.declare(name.strip(), type_name.strip())
        except ValueError as error:
            write("error: {}".format(error))
            return EXIT_USAGE
    try:
        if args.this:
            session.set_this(args.this)
        if args.expect:
            session.set_expected(args.expect)
    except ValueError as error:
        write("error: {}".format(error))
        return EXIT_USAGE
    session.keyword = args.keyword
    if args.timeout_ms is not None:
        if args.timeout_ms <= 0:
            write("error: --timeout-ms must be positive")
            return EXIT_USAGE
        session.timeout_ms = args.timeout_ms
    if args.budget is not None:
        if args.budget <= 0:
            write("error: --budget must be positive")
            return EXIT_USAGE
        session.step_budget = args.budget
    session.trace = args.trace is not None
    # one or many queries: a single batch, so indexes warm once and the
    # queries share the engine's cross-query cache
    records = session.complete_many(args.queries)
    exit_code = EXIT_OK
    for source, record in zip(args.queries, records):
        if len(records) > 1:
            write("pe> {}".format(source))
        if record.error is not None:
            write("parse error: {}".format(record.error))
            if exit_code == EXIT_OK:
                exit_code = EXIT_PARSE_ERROR
            continue
        explained = session.explain(source=source) if args.explain else []
        breakdowns = {
            rank: completion.breakdown
            for rank, completion in enumerate(explained, start=1)
        }
        for suggestion in record.suggestions:
            write("{:>3}. (score {:>3}) {}".format(
                suggestion.rank, suggestion.score, suggestion.text))
            breakdown = breakdowns.get(suggestion.rank)
            if breakdown is not None:
                write("        {}{}".format(
                    "  ".join("{}={}".format(feature, value)
                              for feature, value in breakdown.rows())
                    or "(no enabled terms)",
                    "  (cache replay)" if breakdown.cached else ""))
        if not record.suggestions:
            write("(no completions)")
        if record.degraded:
            write("(degraded features: {})".format(
                ", ".join(sorted(record.degraded))))
        if record.truncated is not None:
            write("(truncated: {} after {:.0f} ms — results are "
                  "best-so-far)".format(
                      record.truncated, record.elapsed_ms or 0.0))
            if exit_code == EXIT_OK:
                exit_code = (EXIT_TIMEOUT if record.truncated == "timeout"
                             else EXIT_BUDGET)
    if args.trace is not None:
        from .obs import trace_to_ndjson

        text = "".join(
            trace_to_ndjson(record.trace, universe=workspace.name,
                            query=source)
            for source, record in zip(args.queries, records)
            if record.trace is not None
        )
        if args.trace == "-":
            for line in text.splitlines():
                write(line)
        else:
            try:
                with open(args.trace, "w") as handle:
                    handle.write(text)
            except OSError as error:
                write("error: {}".format(error))
                return EXIT_USAGE
            write("wrote trace to {}".format(args.trace))
    return exit_code


def _run_lint(args: argparse.Namespace, write) -> int:
    import json

    from .analysis.diagnostics import diag, has_errors, sort_diagnostics

    if args.source is not None:
        from .frontend import SourceReader

        try:
            with open(args.source) as handle:
                text = handle.read()
            project = SourceReader.read(text, project_name=args.source)
        except OSError as error:
            write("error: {}".format(error))
            return EXIT_USAGE
        except Exception as error:
            write("error: cannot load {}: {}".format(args.source, error))
            return EXIT_USAGE
        workspace = Workspace.corpus_project(project)
    else:
        workspace = _open_universe(args.universe, write)
        if workspace is None:
            return EXIT_USAGE
    diagnostics = workspace.lint(sanitize=args.sanitize)

    if args.query is not None:
        session = CompletionSession(workspace)
        for binding in args.let:
            if "=" not in binding:
                write("bad --let {!r}; expected NAME=TYPE".format(binding))
                return EXIT_USAGE
            name, _, type_name = binding.partition("=")
            try:
                session.declare(name.strip(), type_name.strip())
            except ValueError as error:
                # an unknown --let type is a query-scope finding, not a
                # usage abort: report it as RA021 alongside the rest
                diagnostics.append(diag(
                    "RA021", str(error), location=name.strip()))
        try:
            if args.this:
                session.set_this(args.this)
            if args.expect:
                session.set_expected(args.expect)
        except ValueError as error:
            diagnostics.append(diag("RA021", str(error), location="scope"))
        if not any(d.code == "RA021" for d in diagnostics):
            session.keyword = args.keyword
            report = session.analyze(args.query)
            diagnostics.extend(report.diagnostics)
        diagnostics = sort_diagnostics(diagnostics)

    if args.json:
        write(json.dumps({
            "universe": workspace.name,
            "diagnostics": [d.to_dict() for d in diagnostics],
            "summary": {
                severity: sum(
                    1 for d in diagnostics if d.severity.value == severity
                )
                for severity in ("error", "warning", "info")
            },
        }, indent=2, sort_keys=True))
    else:
        for diagnostic in diagnostics:
            write(diagnostic.render())
        if not diagnostics:
            write("(no findings)")
    return EXIT_LINT_ERRORS if has_errors(diagnostics) else EXIT_OK


def _run_impact(args: argparse.Namespace, write) -> int:
    import json

    workspace = _open_universe(args.universe, write)
    if workspace is None:
        return EXIT_USAGE
    full_names = []
    for name in args.types:
        try:
            full_names.append(workspace.resolve_type(name).full_name)
        except ValueError as error:
            write("error: {}".format(error))
            return EXIT_USAGE
    if args.warm:
        from .eval.battery import battery_for

        try:
            battery = battery_for(args.universe)
        except ValueError:
            battery = None
        if battery is not None:
            session = battery.session(workspace)
            session.complete_many(battery.queries)
    report = workspace.impact(full_names)
    if args.json:
        write(json.dumps(report.to_dict(), indent=2, sort_keys=True))
    else:
        for line in report.render():
            write(line)
    return EXIT_OK


def _stats_scrape(args: argparse.Namespace, write) -> int:
    """``repro stats --url``: scrape /v1/metrics, validate or tabulate."""
    import time as _time

    from .obs.expo import (
        parse_exposition,
        table_from_samples,
        validate_exposition,
    )
    from .serve import ServeClient

    ticks = 0
    while True:
        try:
            with ServeClient(args.url) as client:
                status, text = client.metrics()
        except (OSError, ValueError) as error:
            write("error: {}".format(error))
            return EXIT_USAGE
        if status != 200:
            write("error: GET /v1/metrics answered HTTP {}".format(status))
            return 1
        if args.validate:
            problems = validate_exposition(text)
            if problems:
                for problem in problems:
                    write(problem)
                return 1
        try:
            parsed = parse_exposition(text)
        except ValueError as error:
            write("error: {}".format(error))
            return 1
        if args.validate:
            write("{}/v1/metrics: valid exposition ({} samples)".format(
                args.url.rstrip("/"), len(parsed["samples"])))
        if not args.validate or args.watch is not None:
            write("metrics from {} ({} samples)".format(
                args.url, len(parsed["samples"])))
            for line in table_from_samples(parsed):
                write(line)
        ticks += 1
        if args.watch is None:
            return EXIT_OK
        if args.watch_count is not None and ticks >= args.watch_count:
            return EXIT_OK
        _time.sleep(max(args.watch, 0.0))


def _run_stats(args: argparse.Namespace, write) -> int:
    import json

    if args.validate_trace is not None:
        from .obs import validate_trace_text

        try:
            with open(args.validate_trace) as handle:
                text = handle.read()
        except OSError as error:
            write("error: {}".format(error))
            return EXIT_USAGE
        problems = validate_trace_text(text)
        if problems:
            for problem in problems:
                write(problem)
            return 1
        write("{}: valid repro-trace NDJSON".format(args.validate_trace))
        return EXIT_OK

    if args.validate_runlog is not None:
        from .obs import validate_runlog_text

        try:
            with open(args.validate_runlog) as handle:
                text = handle.read()
        except OSError as error:
            write("error: {}".format(error))
            return EXIT_USAGE
        problems = validate_runlog_text(text)
        if problems:
            for problem in problems:
                write(problem)
            return 1
        write("{}: valid repro-runlog NDJSON".format(args.validate_runlog))
        return EXIT_OK

    if args.url is not None:
        return _stats_scrape(args, write)
    if args.validate:
        write("error: --validate needs --url (it checks a scraped "
              "/v1/metrics exposition)")
        return EXIT_USAGE

    from .eval.battery import battery_for

    try:
        battery = battery_for(args.universe)
    except ValueError as error:
        write("error: {}".format(error))
        return EXIT_USAGE
    workspace = _open_universe(args.universe, write)
    if workspace is None:
        return EXIT_USAGE
    session = battery.session(workspace, n=args.n)
    if args.watch is not None:
        import time as _time

        from .obs.expo import render_metrics_table

        ticks = 0
        while True:
            session.complete_many(battery.queries)
            ticks += 1
            for line in render_metrics_table(
                workspace.metrics(),
                title="{} after {} battery run(s)".format(
                    workspace.name, ticks)):
                write(line)
            if args.watch_count is not None and ticks >= args.watch_count:
                return EXIT_OK
            _time.sleep(max(args.watch, 0.0))
    session.complete_many(battery.queries)
    document = {
        "universe": workspace.name,
        "queries": battery.queries,
        "metrics": workspace.metrics(),
    }
    cache_stats = workspace.cache_stats()
    if cache_stats is not None:
        document["cache"] = cache_stats
    write(json.dumps(document, indent=2, sort_keys=True))
    return EXIT_OK


def _run_slo(args: argparse.Namespace, write) -> int:
    import json

    from .obs.runlog import read_run_log
    from .obs.slo import (
        DEFAULT_SLO_SPEC,
        SLOObjectives,
        render_slo_report,
        slo_from_run_log,
    )

    try:
        objectives = SLOObjectives.from_spec(args.slo or DEFAULT_SLO_SPEC)
    except ValueError as error:
        write("error: {}".format(error))
        return EXIT_USAGE
    windows = None
    if args.windows is not None:
        try:
            windows = [float(part) for part in args.windows.split(",")
                       if part.strip()]
        except ValueError:
            write("error: --windows must be comma-separated durations "
                  "in seconds")
            return EXIT_USAGE
        if not windows or any(w <= 0 for w in windows):
            write("error: --windows must name positive durations")
            return EXIT_USAGE
    try:
        with open(args.runlog) as handle:
            records = read_run_log(handle.read())
    except (OSError, ValueError) as error:
        write("error: {}".format(error))
        return EXIT_USAGE
    report = slo_from_run_log(records, objectives, windows=windows)
    if not report["server_requests"]:
        write("error: {} has no server_request records (is it a serve "
              "run log?)".format(args.runlog))
        return EXIT_USAGE
    if args.json:
        write(json.dumps(report, indent=2, sort_keys=True))
    else:
        for line in render_slo_report(report):
            write(line)
    if args.output:
        try:
            with open(args.output, "w") as handle:
                json.dump(report, handle, indent=2, sort_keys=True)
                handle.write("\n")
        except OSError as error:
            write("error: {}".format(error))
            return EXIT_USAGE
        write("wrote {}".format(args.output))
    return EXIT_OK if report["ok"] else 1


def _run_bench(args: argparse.Namespace, write) -> int:
    from .eval.bench import (
        compare_bench,
        load_bench,
        render_bench,
        run_bench,
        save_bench,
    )

    compare = args.compare or []
    if len(compare) > 2:
        write("error: --compare takes one (baseline) or two (old new) paths")
        return EXIT_USAGE

    if len(compare) == 2:
        # compare-only mode: no run, just gate new against old
        try:
            old = load_bench(compare[0])
            new = load_bench(compare[1])
        except (OSError, ValueError) as error:
            write("error: {}".format(error))
            return EXIT_USAGE
        ok, lines = compare_bench(old, new)
        for line in lines:
            write(line)
        return EXIT_OK if ok else 1

    run_log = None
    if args.run_log:
        from .obs.runlog import RunLog

        run_log = RunLog(args.label, seed=args.seed)
    document = run_bench(label=args.label, quick=args.quick, log=write,
                         run_log=run_log, seed=args.seed)
    for line in render_bench(document):
        write(line)
    output = args.output or "BENCH_{}.json".format(args.label)
    try:
        save_bench(output, document)
    except OSError as error:
        write("error: {}".format(error))
        return EXIT_USAGE
    write("wrote {}".format(output))
    if run_log is not None:
        try:
            run_log.write(args.run_log)
        except OSError as error:
            write("error: {}".format(error))
            return EXIT_USAGE
        write("wrote run log to {}".format(args.run_log))

    if len(compare) == 1:
        try:
            baseline = load_bench(compare[0])
        except (OSError, ValueError) as error:
            write("error: {}".format(error))
            return EXIT_USAGE
        ok, lines = compare_bench(baseline, document)
        for line in lines:
            write(line)
        return EXIT_OK if ok else 1
    return EXIT_OK


def _run_fuzz(args: argparse.Namespace, write) -> int:
    from .fuzz import FuzzConfig, run_fuzz
    from .fuzz.harness import render_report
    from .fuzz.shrink import replay_repro

    if args.replay is not None:
        try:
            failure = replay_repro(args.replay, write=write)
        except (OSError, ValueError) as error:
            write("error: {}".format(error))
            return EXIT_USAGE
        return EXIT_OK if failure is None else 1

    if args.iterations <= 0:
        write("error: --iterations must be positive")
        return EXIT_USAGE
    transforms = None
    if args.transforms is not None:
        transforms = [name.strip() for name in args.transforms.split(",")
                      if name.strip()]
        if not transforms:
            write("error: --transforms names no families")
            return EXIT_USAGE
    universes = ("paint", "geometry", "bcl")
    if args.universe is not None:
        if args.universe not in Workspace.BUILTIN:
            write("error: unknown universe {!r}; choose one of: {}".format(
                args.universe, ", ".join(sorted(Workspace.BUILTIN))))
            return EXIT_USAGE
        universes = (args.universe,)
    config = FuzzConfig(
        seed=args.seed,
        iterations=args.iterations,
        chaos=args.chaos,
        transforms=transforms,
        universes=universes,
        out_dir=args.out,
    )
    try:
        config.families()
    except ValueError as error:
        write("error: {}".format(error))
        return EXIT_USAGE

    run_log = None
    if args.run_log:
        from .obs.runlog import RunLog

        run_log = RunLog("fuzz-seed{}".format(args.seed), seed=args.seed)
    report = run_fuzz(config, write=write, run_log=run_log)
    for line in render_report(report):
        write(line)
    if run_log is not None:
        try:
            run_log.write(args.run_log)
        except OSError as error:
            write("error: {}".format(error))
            return EXIT_USAGE
        write("wrote run log to {}".format(args.run_log))
    return 1 if report.failed else EXIT_OK


def _parse_universes(spec: str, write) -> Optional[List[str]]:
    keys = [key.strip() for key in spec.split(",") if key.strip()]
    if not keys:
        write("error: --universes names no universes")
        return None
    for key in keys:
        if key not in Workspace.BUILTIN:
            write("error: unknown universe {!r}; choose one of: {}".format(
                key, ", ".join(sorted(Workspace.BUILTIN))))
            return None
    return keys


def _run_serve(args: argparse.Namespace, write) -> int:  # pragma: no cover
    # interactive foreground loop; the start/stop machinery itself is
    # covered through the in-process fixtures in tests/test_serve.py
    import asyncio

    from .serve import CompletionServer, EnginePool

    universes = _parse_universes(args.universes, write)
    if universes is None:
        return EXIT_USAGE
    if args.default_deadline_ms is not None and args.default_deadline_ms <= 0:
        write("error: --default-deadline-ms must be positive")
        return EXIT_USAGE
    slo = None
    if args.slo is not None:
        from .obs.slo import SLOObjectives

        try:
            slo = SLOObjectives.from_spec(args.slo)
        except ValueError as error:
            write("error: {}".format(error))
            return EXIT_USAGE
    fault_plan = None
    if args.fault_plan is not None:
        from .serve.chaos import ChaosSpec

        try:
            fault_plan = ChaosSpec.from_source(args.fault_plan)
        except (OSError, ValueError) as error:
            write("error: {}".format(error))
            return EXIT_USAGE
    pool = EnginePool(universes)
    for pack_path in args.packs or ():
        from .errors import PackError
        from .pack import load_pack

        try:
            workspace = load_pack(pack_path)
        except PackError as error:
            write("error [{}]: {}".format(error.code, error))
            return exit_code_for(error.code)
        pool.add_workspace(workspace.name, workspace)
        write("mounted pack {} as workspace {!r}".format(
            pack_path, workspace.name))
    server = CompletionServer(
        pool=pool,
        host=args.host,
        port=args.port,
        default_deadline_ms=args.default_deadline_ms,
        run_log_dir=args.run_log_dir,
        slo=slo,
        fault_plan=fault_plan,
    )

    async def run() -> None:
        write("warming {} workspace(s): {}".format(
            len(universes), ", ".join(universes)))
        if slo is not None:
            write("slo: {}".format(args.slo))
        if fault_plan is not None:
            write("chaos: seed={} rate={:.0%}".format(
                fault_plan.seed, fault_plan.rate))
        await server.start()
        write("serving on {} (Ctrl-C to drain and stop)".format(server.url))
        try:
            await server.serve_forever()
        except asyncio.CancelledError:
            pass

    try:
        asyncio.run(run())
    except KeyboardInterrupt:
        write("draining in-flight requests...")
        asyncio.run(server.stop(drain=True))
        write("stopped")
    return EXIT_OK


def _run_pack(args: argparse.Namespace, write) -> int:
    from .errors import PackError

    try:
        if args.pack_command == "build":
            from .api import build_pack, open_workspace

            try:
                workspace = open_workspace(args.source)
            except ValueError as error:
                write("error: {}".format(error))
                return EXIT_USAGE
            output = args.output or "{}.pack".format(workspace.name)
            header = build_pack(workspace, output)
            meta = header["meta"]
            write("wrote {}: {} types, {} methods, {} walks, "
                  "fingerprint {}".format(
                      output, meta["types"], meta["methods"], meta["walks"],
                      meta["fingerprint"]))
            return EXIT_OK
        if args.pack_command == "inspect":
            import json as _json

            from .pack import inspect_pack

            header = inspect_pack(args.path)
            if args.json:
                write(_json.dumps(header, indent=2, sort_keys=True))
            else:
                meta = header.get("meta", {})
                write("{} (format {} v{})".format(
                    args.path, header.get("format"), header.get("version")))
                for key in sorted(meta):
                    write("  {}: {}".format(key, meta[key]))
                write("  checksum: {}".format(header.get("checksum")))
            return EXIT_OK
        if args.pack_command == "verify":
            from .pack import verify_pack

            header = verify_pack(
                args.path, expect_fingerprint=args.expect_fingerprint)
            write("ok: {} verifies (fingerprint {})".format(
                args.path, header["meta"]["fingerprint"]))
            return EXIT_OK
        if args.pack_command == "load":
            import time as _time

            from .pack import load_pack

            start = _time.perf_counter()
            workspace = load_pack(args.path)
            elapsed_ms = (_time.perf_counter() - start) * 1000.0
            write("loaded workspace {!r} in {:.1f} ms ({} types)".format(
                workspace.name, elapsed_ms,
                len(workspace.ts.all_types())))
            return EXIT_OK
    except PackError as error:
        write("error [{}]: {}".format(error.code, error))
        return exit_code_for(error.code)
    except OSError as error:
        write("error: {}".format(error))
        return EXIT_USAGE
    return EXIT_USAGE


def _run_loadtest(args: argparse.Namespace, write) -> int:
    from .eval.bench import save_bench
    from .serve import render_loadgen, run_loadgen

    if args.universe not in Workspace.BUILTIN:
        write("error: unknown universe {!r}; choose one of: {}".format(
            args.universe, ", ".join(sorted(Workspace.BUILTIN))))
        return EXIT_USAGE
    if args.n_workers <= 0:
        write("error: --n-workers must be positive")
        return EXIT_USAGE
    if args.duration <= 0:
        write("error: --duration must be positive")
        return EXIT_USAGE
    if args.deadline_ms is not None and args.deadline_ms <= 0:
        write("error: --deadline-ms must be positive")
        return EXIT_USAGE
    if args.fault_plan is not None and args.url is not None:
        write("error: --fault-plan needs an in-process server; drop --url "
              "(a remote server mounts chaos via `repro serve "
              "--fault-plan`)")
        return EXIT_USAGE
    try:
        document = run_loadgen(
            url=args.url,
            universe=args.universe,
            n_workers=args.n_workers,
            duration_s=args.duration,
            deadline_ms=args.deadline_ms,
            label=args.label,
            n=args.n,
            run_log_dir=args.run_log_dir,
            log=write,
            fault_plan=args.fault_plan,
        )
    except (OSError, ValueError) as error:
        write("error: {}".format(error))
        return EXIT_USAGE
    for line in render_loadgen(document):
        write(line)
    output = args.output or "BENCH_serve_{}.json".format(args.label)
    try:
        save_bench(output, document)
    except OSError as error:
        write("error: {}".format(error))
        return EXIT_USAGE
    write("wrote {}".format(output))
    serve = document["serve"]
    if serve["requests"] > 0 and serve["ok"] == 0 and serve["shed"] == 0:
        write("error: every request failed; is the server healthy?")
        return 1
    return EXIT_OK


def _run_profile(args: argparse.Namespace, write) -> int:
    from .obs import Profile, profile_run_log, read_run_log

    if args.from_log is not None:
        try:
            with open(args.from_log) as handle:
                records = read_run_log(handle.read())
        except (OSError, ValueError) as error:
            write("error: {}".format(error))
            return EXIT_USAGE
        profile = profile_run_log(records)
        write("profile of {} ({} traced queries)".format(
            args.from_log, profile.traces))
    else:
        from .eval.battery import battery_for

        try:
            battery = battery_for(args.universe)
        except ValueError as error:
            write("error: {}".format(error))
            return EXIT_USAGE
        workspace = _open_universe(args.universe, write)
        if workspace is None:
            return EXIT_USAGE
        session = battery.session(workspace, n=args.n)
        session.trace = True
        records = session.complete_many(battery.queries)
        profile = Profile()
        for record in records:
            if record.trace is not None:
                profile.add_trace(record.trace)
        write("profile of the {!r} battery ({} queries)".format(
            workspace.name, len(battery.queries)))
    for line in profile.render(limit=args.limit):
        write(line)
    if args.flame is not None:
        try:
            with open(args.flame, "w") as handle:
                for line in profile.to_collapsed():
                    handle.write(line + "\n")
        except OSError as error:
            write("error: {}".format(error))
            return EXIT_USAGE
        write("wrote flamegraph text to {}".format(args.flame))
    return EXIT_OK


def _run_diff(args: argparse.Namespace, write) -> int:
    from .obs import diff_runs, render_markdown
    from .obs.diff import load_run_artifact, render_text

    try:
        old = load_run_artifact(args.old)
        new = load_run_artifact(args.new)
        diff = diff_runs(old, new)
    except (OSError, ValueError) as error:
        write("error: {}".format(error))
        return EXIT_USAGE
    for line in render_text(diff):
        write(line)
    if args.markdown is not None:
        try:
            with open(args.markdown, "w") as handle:
                handle.write(render_markdown(diff))
        except OSError as error:
            write("error: {}".format(error))
            return EXIT_USAGE
        write("wrote {}".format(args.markdown))
    return EXIT_OK


def _eval_config(full: bool):
    from .eval.experiments import EvalConfig

    if full:
        return EvalConfig()
    return EvalConfig(
        limit=60,
        max_calls_per_project=40,
        max_arguments_per_project=50,
        max_assignments_per_project=25,
        max_comparisons_per_project=15,
    )


def _run_report(args: argparse.Namespace, write) -> int:
    from .corpus import build_all_projects
    from .eval.runreport import generate_run_report
    from .obs.runlog import RunLog

    run_log = RunLog("eval-full" if args.full else "eval", seed=args.seed)
    projects = build_all_projects(run_log=run_log)
    report = generate_run_report(
        projects, _eval_config(args.full), run_log=run_log
    )
    if args.output:
        try:
            with open(args.output, "w") as handle:
                handle.write(report)
        except OSError as error:
            write("error: {}".format(error))
            return EXIT_USAGE
        write("wrote {}".format(args.output))
    else:
        write(report)
    if args.run_log:
        try:
            run_log.write(args.run_log)
        except OSError as error:
            write("error: {}".format(error))
            return EXIT_USAGE
        write("wrote run log to {}".format(args.run_log))
    return EXIT_OK


def main(argv: Optional[List[str]] = None, write=print) -> int:
    args = _build_parser().parse_args(argv)
    if args.command == "repl":  # pragma: no cover - interactive
        from .ide.repl import main as repl_main

        if _open_universe(args.universe, write) is None:
            return EXIT_USAGE
        repl_main(args.universe)
        return 0
    if args.command == "complete":
        return _run_complete(args, write)
    if args.command == "lint":
        return _run_lint(args, write)
    if args.command == "bench":
        return _run_bench(args, write)
    if args.command == "fuzz":
        return _run_fuzz(args, write)
    if args.command == "serve":  # pragma: no cover - foreground loop
        return _run_serve(args, write)
    if args.command == "pack":
        return _run_pack(args, write)
    if args.command == "loadtest":
        return _run_loadtest(args, write)
    if args.command == "stats":
        return _run_stats(args, write)
    if args.command == "slo":
        return _run_slo(args, write)
    if args.command == "impact":
        return _run_impact(args, write)
    if args.command == "profile":
        return _run_profile(args, write)
    if args.command == "diff":
        return _run_diff(args, write)
    if args.command == "report":
        return _run_report(args, write)
    if args.command == "census":
        from .corpus import build_all_projects, last_build_diagnostics
        from .eval import corpus_census, format_census

        write(format_census(corpus_census(build_all_projects(args.scale))))
        for diagnostic in last_build_diagnostics():
            write("warning: skipped {} ({}): {}".format(
                diagnostic.project, diagnostic.stage, diagnostic.detail))
        return 0
    if args.command == "dump-universe":
        import json

        from .serialize import dump_type_system

        workspace = _open_universe(args.universe, write)
        if workspace is None:
            return EXIT_USAGE
        with open(args.output, "w") as handle:
            json.dump(dump_type_system(workspace.ts), handle)
        write("wrote {}".format(args.output))
        return 0
    if args.command == "eval":
        run_log = None
        if args.run_log:
            if not (args.save or args.compare or args.markdown):
                write("error: --run-log needs --markdown, --save, or "
                      "--compare (the demo path records no run log)")
                return EXIT_USAGE
            from .obs.runlog import RunLog

            run_log = RunLog("eval-full" if args.full else "eval",
                             seed=args.seed)

        def _write_run_log() -> None:
            if run_log is not None:
                run_log.write(args.run_log)
                write("wrote run log to {}".format(args.run_log))

        if args.save or args.compare:
            from .corpus import build_all_projects
            from .eval.experiments import EvalConfig
            from .eval.persistence import compare_runs, format_comparison
            from .eval.runner import ResultBundle, run_all

            if args.full:
                cfg = EvalConfig(with_intellisense=False,
                                 with_return_type=False)
            else:
                cfg = EvalConfig(
                    limit=60,
                    max_calls_per_project=40,
                    max_arguments_per_project=50,
                    max_assignments_per_project=25,
                    max_comparisons_per_project=15,
                    with_intellisense=False,
                    with_return_type=False,
                )
            bundle = run_all(
                build_all_projects(run_log=run_log), cfg, run_log)
            if args.save:
                bundle.save(args.save)
                write("saved {}".format(args.save))
            if args.compare:
                baseline = ResultBundle.load(args.compare)
                report = compare_runs(baseline.families(), bundle.families())
                write(format_comparison(report))
            _write_run_log()
            return 0
        if args.markdown:
            from .corpus import build_all_projects
            from .eval.markdown import generate_report

            report = generate_report(
                build_all_projects(run_log=run_log),
                _eval_config(args.full),
                run_log=run_log,
            )
            with open(args.markdown, "w") as handle:
                handle.write(report)
            write("wrote {}".format(args.markdown))
            _write_run_log()
            return 0
        import pathlib
        import runpy

        demo = (
            pathlib.Path(__file__).parent.parent.parent
            / "examples" / "evaluation_demo.py"
        )
        sys.argv = ["evaluation_demo.py"] + (["--full"] if args.full else [])
        runpy.run_path(str(demo), run_name="__main__")
        return 0
    return 2  # pragma: no cover - argparse guards commands


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
