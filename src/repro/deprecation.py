"""Deprecation shims for the ``repro.api`` facade redesign.

The facade normalised a few historically inconsistent names
(``CompletionSession.query`` → ``complete``,
``Workspace.set_cache_enabled`` → the ``cache_enabled`` property,
``QueryOutcome.truncated/.unsatisfiable/.preflight`` → ``status`` /
``preflight_report``).  Old spellings keep working for at least one
release but warn through here, so every shim emits the same
machine-greppable message shape::

    <old> is deprecated; use <new>

``warnings.simplefilter("error", DeprecationWarning)`` therefore turns
any leftover use into a hard failure, which is how the test suite pins
the shims.
"""

from __future__ import annotations

import functools
import warnings


def warn_deprecated(old: str, new: str, stacklevel: int = 3) -> None:
    """Emit the standard deprecation warning for a renamed API."""
    warnings.warn(
        "{} is deprecated; use {}".format(old, new),
        DeprecationWarning,
        stacklevel=stacklevel,
    )


def deprecated_alias(old: str, new: str):
    """Decorate a method that exists only as a renamed alias."""

    def decorate(fn):
        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            warn_deprecated(old, new)
            return fn(*args, **kwargs)

        wrapper.__doc__ = "Deprecated alias for ``{}``.".format(new)
        return wrapper

    return decorate
