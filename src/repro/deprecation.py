"""Deprecation shims for the ``repro.api`` facade redesign.

The facade normalised a few historically inconsistent names
(``CompletionSession.query`` → ``complete``,
``Workspace.set_cache_enabled`` → the ``cache_enabled`` property,
``QueryOutcome.truncated/.unsatisfiable/.preflight`` → ``status`` /
``preflight_report``).  Old spellings keep working for at least one
release but warn through here, so every shim emits the same
machine-greppable message shape::

    <old> is deprecated; use <new>

Each *call site* (shim name, caller file, caller line) warns **once**
per process — a loop over a deprecated property logs one warning, not
thousands — and the warning is attributed to the caller's line via
``stacklevel``, never to this module or the shim body.  The memo is
recorded only after ``warnings.warn`` returns, so
``warnings.simplefilter("error", DeprecationWarning)`` still turns
*every* use into a hard failure, which is how the test suite pins the
shims; :func:`reset_deprecation_memo` clears the memo (the test
suite's autouse fixture calls it between tests).
"""

from __future__ import annotations

import functools
import sys
import warnings
from typing import Optional, Set, Tuple

#: call sites that already warned: (old name, caller file, caller line)
_seen_sites: Set[Tuple[str, str, int]] = set()


def reset_deprecation_memo() -> None:
    """Forget which call sites have warned (tests isolate through this)."""
    _seen_sites.clear()


def _call_site(old: str, stacklevel: int) -> Optional[Tuple[str, str, int]]:
    # the frame warnings.warn would attribute the warning to: stacklevel
    # counts from warn_deprecated (1 == it), and this helper is one
    # frame deeper, so the offset from here is exactly ``stacklevel``
    try:
        frame = sys._getframe(stacklevel)
    except ValueError:
        return None
    return (old, frame.f_code.co_filename, frame.f_lineno)


def warn_deprecated(old: str, new: str, stacklevel: int = 3) -> None:
    """Emit the standard deprecation warning for a renamed API.

    ``stacklevel`` counts from this function (the default 3 points at
    the caller of the shim that called us — user code).  Repeat calls
    from the same site are silent, unless the first one raised (an
    ``error`` warning filter), so error-pinning keeps failing loudly.
    """
    site = _call_site(old, stacklevel)
    if site is not None and site in _seen_sites:
        return
    warnings.warn(
        "{} is deprecated; use {}".format(old, new),
        DeprecationWarning,
        stacklevel=stacklevel,
    )
    if site is not None:
        _seen_sites.add(site)


def deprecated_alias(old: str, new: str):
    """Decorate a method that exists only as a renamed alias."""

    def decorate(fn):
        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            warn_deprecated(old, new)
            return fn(*args, **kwargs)

        wrapper.__doc__ = "Deprecated alias for ``{}``.".format(new)
        return wrapper

    return decorate
