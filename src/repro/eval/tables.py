"""Table 1 (per-project quality) and Table 2 (ranking-term sensitivity)."""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence

from ..corpus.program import Project
from ..engine.ranking import RankingConfig
from .experiments import (
    EvalConfig,
    run_argument_prediction,
    run_assignment_prediction,
    run_comparison_prediction,
    run_method_prediction,
)
from .figures import proportion_top


# ---------------------------------------------------------------------------
# Table 1
# ---------------------------------------------------------------------------
@dataclass
class Table1Row:
    project: str
    calls: int
    top10: int
    top10_20: int


def table1(results) -> List[Table1Row]:
    """Per-project counts of best rank in the top 10 / next 10, plus a
    Totals row (Table 1 of the paper)."""
    order: "OrderedDict[str, List]" = OrderedDict()
    for result in results:
        order.setdefault(result.project, []).append(result)
    rows: List[Table1Row] = []
    for project, bucket in order.items():
        rows.append(
            Table1Row(
                project=project,
                calls=len(bucket),
                top10=sum(
                    1 for r in bucket if r.best_rank is not None and r.best_rank <= 10
                ),
                top10_20=sum(
                    1
                    for r in bucket
                    if r.best_rank is not None and 10 < r.best_rank <= 20
                ),
            )
        )
    rows.append(
        Table1Row(
            project="Totals",
            calls=sum(r.calls for r in rows),
            top10=sum(r.top10 for r in rows),
            top10_20=sum(r.top10_20 for r in rows),
        )
    )
    return rows


# ---------------------------------------------------------------------------
# Table 2
# ---------------------------------------------------------------------------
#: the paper's column order
TABLE2_CONFIGS: List[RankingConfig] = (
    [RankingConfig.all_features()]
    + [RankingConfig.without(letter) for letter in "nsdmta"]
    + [RankingConfig.without("at")]
    + [RankingConfig.only(letter) for letter in "nsdmta"]
    + [RankingConfig.only("at")]
)

#: row groups of Table 2
TABLE2_ROWS = [
    ("Methods", "All"),
    ("Methods", "Instance"),
    ("Methods", "Static"),
    ("Arguments", "Normal"),
    ("Arguments", "No variables"),
    ("Assignments", "Target"),
    ("Assignments", "Source"),
    ("Assignments", "Both"),
    ("Comparisons", "Left"),
    ("Comparisons", "Right"),
    ("Comparisons", "Both"),
    ("Comparisons", "2xLeft"),
    ("Comparisons", "2xRight"),
]


@dataclass
class Table2:
    """Grid of top-20 proportions: (family, row) x config label."""

    columns: List[str]
    counts: Dict[tuple, int]
    values: Dict[tuple, Dict[str, float]]


def table2(
    projects: Sequence[Project],
    base: Optional[EvalConfig] = None,
    cutoff: int = 20,
) -> Table2:
    """Re-run every experiment family under each ranking variant.

    Use the ``max_*_per_project`` caps in ``base`` to subsample — the full
    grid is 15 configs x 4 experiment families.
    """
    base = base or EvalConfig(
        with_return_type=False, with_intellisense=False
    )
    columns = [config.label() for config in TABLE2_CONFIGS]
    values: Dict[tuple, Dict[str, float]] = {row: {} for row in TABLE2_ROWS}
    counts: Dict[tuple, int] = {}

    for config in TABLE2_CONFIGS:
        label = config.label()
        cfg = replace(
            base,
            ranking=config,
            with_return_type=False,
            with_intellisense=False,
        )

        methods = run_method_prediction(projects, cfg)
        _fill(values, counts, ("Methods", "All"), label,
              [r.best_rank for r in methods], cutoff)
        _fill(values, counts, ("Methods", "Instance"), label,
              [r.best_rank for r in methods if not r.is_static], cutoff)
        _fill(values, counts, ("Methods", "Static"), label,
              [r.best_rank for r in methods if r.is_static], cutoff)

        arguments = [r for r in run_argument_prediction(projects, cfg) if r.guessable]
        _fill(values, counts, ("Arguments", "Normal"), label,
              [r.rank for r in arguments], cutoff)
        _fill(values, counts, ("Arguments", "No variables"), label,
              [r.rank for r in arguments if not r.is_local], cutoff)

        assignments = run_assignment_prediction(projects, cfg)
        for variant in ("Target", "Source", "Both"):
            _fill(values, counts, ("Assignments", variant), label,
                  [r.rank for r in assignments if r.variant == variant], cutoff)

        comparisons = run_comparison_prediction(projects, cfg)
        for variant in ("Left", "Right", "Both", "2xLeft", "2xRight"):
            _fill(values, counts, ("Comparisons", variant), label,
                  [r.rank for r in comparisons if r.variant == variant], cutoff)

    return Table2(columns=columns, counts=counts, values=values)


def _fill(values, counts, row, label, ranks, cutoff) -> None:
    ranks = list(ranks)
    counts[row] = len(ranks)
    values[row][label] = proportion_top(ranks, cutoff)
