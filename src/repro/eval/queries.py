"""Query extraction: turning corpus expressions into partial expressions.

The evaluation (Sec. 5) takes real expressions and deletes information:

* method calls lose their method name (and keep 1–2 arguments) — Sec. 5.1;
* one argument of a call is replaced by ``?`` — Sec. 5.2;
* assignments/comparisons lose trailing field lookups and get ``.?m`` /
  ``.?m.?m`` suffixes — Sec. 5.3.

These helpers build those queries and classify ground-truth expressions.
"""

from __future__ import annotations

from itertools import combinations
from typing import List, Optional, Tuple

from ..analysis.scope import Context
from ..corpus.synthesis import classify_expr
from ..engine.completer import EngineConfig
from ..lang.ast import Assign, Call, Compare, Expr, FieldAccess, TypeLiteral
from ..lang.partial import (
    Hole,
    KnownCall,
    PartialAssign,
    PartialCompare,
    SuffixHole,
    UnknownCall,
)
from ..lang.semantics import chain_prefixes, is_hole_completion


# ---------------------------------------------------------------------------
# Sec. 5.1 — method-name prediction
# ---------------------------------------------------------------------------
def method_query_subsets(
    call: Call, max_subset: int = 2
) -> List[Tuple[Expr, ...]]:
    """Argument subsets of size 1..max_subset used as ``?({...})`` queries.

    The paper: "giving one or two of the call's arguments to the algorithm"
    and reporting the best result over subsets.
    """
    args = list(call.args)
    subsets: List[Tuple[Expr, ...]] = [(a,) for a in args]
    for size in range(2, max_subset + 1):
        subsets.extend(combinations(args, size))
    # querying with an identical expression twice is not meaningful
    return [s for s in subsets if len({e.key() for e in s}) == len(s)]


def unknown_call_query(subset: Tuple[Expr, ...]) -> UnknownCall:
    return UnknownCall(tuple(subset))


# ---------------------------------------------------------------------------
# Sec. 5.2 — argument prediction
# ---------------------------------------------------------------------------
def argument_query(call: Call, position: int) -> KnownCall:
    """The call with argument ``position`` replaced by ``?``."""
    args = tuple(
        Hole() if index == position else arg
        for index, arg in enumerate(call.args)
    )
    return KnownCall((call.method,), args)


def argument_kind(arg: Expr) -> str:
    """Fig. 14's census buckets for how arguments are written."""
    return classify_expr(arg)


def is_guessable_argument(
    arg: Expr, context: Context, config: EngineConfig
) -> bool:
    """Can the engine's ``?`` expansion produce this argument at all?

    Mirrors the paper's "23,927 were considered not guessable due to having
    an expression form that our partial expression completer does not
    generate like an array lookup or a constant value" — plus our explicit
    chain-depth bound.
    """
    if not is_hole_completion(arg, context):
        return False
    return chain_length(arg) is not None and chain_length(arg) <= config.max_chain_depth


def chain_length(expr: Expr) -> Optional[int]:
    """Number of trailing lookups over the chain root, or ``None`` when the
    expression is not a lookup chain."""
    steps = -1
    for _prefix in chain_prefixes(expr, allow_methods=True):
        steps += 1
    return steps


# ---------------------------------------------------------------------------
# Sec. 5.3 — field-lookup prediction
# ---------------------------------------------------------------------------
def strip_lookups(expr: Expr, count: int) -> Optional[Expr]:
    """Remove exactly ``count`` trailing *field/property* lookups.

    Returns ``None`` when the expression does not end in that many lookups.
    The paper removes field lookups (zero-arg calls are what ``.?m`` may
    *add back*, not what gets removed).
    """
    current = expr
    for _ in range(count):
        if isinstance(current, FieldAccess) and not isinstance(
            current.base, TypeLiteral
        ):
            current = current.base
        else:
            return None
    return current


def ends_in_lookups(expr: Expr, count: int) -> bool:
    return strip_lookups(expr, count) is not None


def assignment_query(
    assign: Assign, strip_target: bool, strip_source: bool
) -> Optional[PartialAssign]:
    """Fig. 15's query: final lookups removed per variant, ``.?m`` appended
    to *both* sides."""
    lhs: Optional[Expr] = assign.lhs
    rhs: Optional[Expr] = assign.rhs
    if strip_target:
        lhs = strip_lookups(assign.lhs, 1)
    if strip_source:
        rhs = strip_lookups(assign.rhs, 1)
    if lhs is None or rhs is None:
        return None
    return PartialAssign(
        SuffixHole(lhs, methods=True, star=False),
        SuffixHole(rhs, methods=True, star=False),
    )


def comparison_query(
    compare: Compare, strip_left: int, strip_right: int
) -> Optional[PartialCompare]:
    """Fig. 16's query: lookups removed per variant, ``.?m.?m`` appended to
    both sides."""
    lhs = strip_lookups(compare.lhs, strip_left)
    rhs = strip_lookups(compare.rhs, strip_right)
    if lhs is None or rhs is None:
        return None
    return PartialCompare(
        _double_suffix(lhs), _double_suffix(rhs), compare.op
    )


def _double_suffix(base: Expr) -> SuffixHole:
    return SuffixHole(
        SuffixHole(base, methods=True, star=False), methods=True, star=False
    )


#: Fig. 16's variant names -> lookups stripped from (left, right)
COMPARISON_VARIANTS: List[Tuple[str, int, int]] = [
    ("Left", 1, 0),
    ("Right", 0, 1),
    ("Both", 1, 1),
    ("2xLeft", 2, 0),
    ("2xRight", 0, 2),
]

#: Fig. 15's variant names -> (strip target, strip source)
ASSIGNMENT_VARIANTS: List[Tuple[str, bool, bool]] = [
    ("Target", True, False),
    ("Source", False, True),
    ("Both", True, True),
]
