"""Markdown report generation for a full evaluation run.

``generate_report`` runs all four experiment families and renders one
self-contained markdown document with every table and figure — the
machine-written counterpart of EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Iterable, List, Mapping, Optional

from ..corpus.program import Project
from ..obs.runlog import RunLog
from .experiments import (
    EvalConfig,
    project_runs,
    run_argument_prediction,
    run_assignment_prediction,
    run_comparison_prediction,
    run_method_prediction,
)
from .figures import (
    figure9,
    figure9_by_project,
    figure10,
    figure11_histogram,
    figure11,
    figure12,
    figure13,
    figure14,
    figure15,
    figure16,
)
from .speed import (
    argument_query_times,
    best_method_query_times,
    lookup_query_times,
    speed_summary,
)
from .tables import table1


def _pct(value: float) -> str:
    return "{:.1f}%".format(100.0 * value)


def _md_table(headers: List[str], rows: Iterable[List[str]]) -> List[str]:
    lines = ["| " + " | ".join(headers) + " |"]
    lines.append("|" + "|".join("---" for _ in headers) + "|")
    for row in rows:
        lines.append("| " + " | ".join(row) + " |")
    return lines


def _cdf_table(series: Mapping[str, Mapping[int, float]]) -> List[str]:
    cutoffs: List[int] = []
    for values in series.values():
        cutoffs = list(values.keys())
        break
    headers = ["series"] + ["<= {}".format(c) for c in cutoffs]
    rows = [
        [name] + [_pct(v) for v in values.values()]
        for name, values in series.items()
    ]
    return _md_table(headers, rows)


def _speed_row(title: str, summary: Mapping[str, float]) -> List[str]:
    if summary.get("count", 0) == 0:
        return [title, "0", "-", "-", "-"]
    return [
        title,
        str(int(summary["count"])),
        "{:.1f} ms".format(summary["p50_ms"]),
        _pct(summary["under_100ms"]),
        _pct(summary["under_500ms"]),
    ]


def generate_report(
    projects: Iterable[Project],
    cfg: Optional[EvalConfig] = None,
    title: str = "Evaluation report",
    run_log: Optional[RunLog] = None,
) -> str:
    """Run every experiment family and render a markdown report.

    With ``run_log`` attached, every timed query is also recorded as a
    structured run-log record (docs/OBSERVABILITY.md).
    """
    projects = list(projects)
    cfg = cfg or EvalConfig()
    runs = project_runs(projects, cfg)
    out: List[str] = ["# {}".format(title), ""]

    from .stats import corpus_census

    out += ["## Corpus census", ""]
    out += _md_table(
        ["Project", "types", "methods", "impls", "calls", "assigns",
         "compares"],
        [
            [c.name, str(c.types), str(c.methods), str(c.impls),
             str(c.calls), str(c.assignments), str(c.comparisons)]
            for c in corpus_census(projects)
        ],
    )
    out.append("")

    methods = run_method_prediction(projects, cfg, runs, run_log)
    out += ["## Table 1 — method prediction per project", ""]
    rows = [
        [r.project, str(r.calls), str(r.top10), str(r.top10_20)]
        for r in table1(methods)
    ]
    out += _md_table(["Program", "# calls", "# top 10", "# top 10..20"], rows)

    out += ["", "## Figure 9 — best-rank CDF", ""]
    out += _cdf_table(figure9(methods))
    out += ["", "### Per project", ""]
    out += _cdf_table(figure9_by_project(methods))

    out += ["", "## Figure 10 — one vs. two known arguments", ""]
    out += _md_table(
        ["arity", "count", "top-20 (2 args)", "top-20 (1 arg)"],
        [
            [str(arity), str(int(row["count"])), _pct(row["two_args"]),
             _pct(row["one_arg"])]
            for arity, row in figure10(methods).items()
        ],
    )

    if cfg.with_intellisense:
        out += ["", "## Figures 11 & 12 — vs. Intellisense", ""]
        fig11 = figure11(methods)
        fig12 = figure12(methods) if cfg.with_return_type else None
        headers = ["bucket", "Fig. 11"] + (["Fig. 12 (return type known)"]
                                           if fig12 else [])
        rows = []
        for key in ("we_win_by_10+", "we_win", "tie", "intellisense_wins",
                    "intellisense_wins_by_10+"):
            row = [key, _pct(fig11.get(key, 0.0))]
            if fig12:
                row.append(_pct(fig12.get(key, 0.0)))
            rows.append(row)
        out += _md_table(headers, rows)
        out += ["", "### Rank-difference histogram (ours − Intellisense)", ""]
        out += _md_table(
            ["band", "share"],
            [[band, _pct(share)]
             for band, share in figure11_histogram(methods).items()],
        )

    arguments = run_argument_prediction(projects, cfg, runs, run_log)
    out += ["", "## Figure 13 — argument prediction", ""]
    out += _cdf_table(figure13(arguments))
    out += ["", "## Figure 14 — argument kinds", ""]
    out += _md_table(
        ["kind", "share"],
        [[kind, _pct(share)] for kind, share in figure14(arguments).items()],
    )

    assignments = run_assignment_prediction(projects, cfg, runs, run_log)
    out += ["", "## Figure 15 — assignments", ""]
    out += _cdf_table(figure15(assignments))

    comparisons = run_comparison_prediction(projects, cfg, runs, run_log)
    out += ["", "## Figure 16 — comparisons", ""]
    out += _cdf_table(figure16(comparisons))

    out += ["", "## Query latency", ""]
    out += _md_table(
        ["family", "queries", "p50", "< 100 ms", "< 500 ms"],
        [
            _speed_row("methods",
                       speed_summary(best_method_query_times(methods))),
            _speed_row("arguments",
                       speed_summary(argument_query_times(arguments))),
            _speed_row("lookups",
                       speed_summary(lookup_query_times(
                           assignments + comparisons))),
        ],
    )
    out.append("")
    return "\n".join(out)
