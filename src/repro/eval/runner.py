"""One-call evaluation runs bundling all four experiment families."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Optional

from ..corpus.program import Project
from .experiments import (
    ArgumentResult,
    EvalConfig,
    LookupResult,
    MethodCallResult,
    project_runs,
    run_argument_prediction,
    run_assignment_prediction,
    run_comparison_prediction,
    run_method_prediction,
)
from .persistence import load_results, save_results


@dataclass
class ResultBundle:
    """Results of one complete evaluation run."""

    methods: List[MethodCallResult] = field(default_factory=list)
    arguments: List[ArgumentResult] = field(default_factory=list)
    assignments: List[LookupResult] = field(default_factory=list)
    comparisons: List[LookupResult] = field(default_factory=list)

    def save(self, path: str) -> None:
        save_results(
            path,
            methods=self.methods,
            arguments=self.arguments,
            assignments=self.assignments,
            comparisons=self.comparisons,
        )

    @classmethod
    def load(cls, path: str) -> "ResultBundle":
        data = load_results(path)
        return cls(
            methods=data["methods"],
            arguments=data["arguments"],
            assignments=data["assignments"],
            comparisons=data["comparisons"],
        )

    def families(self) -> dict:
        return {
            "methods": self.methods,
            "arguments": self.arguments,
            "assignments": self.assignments,
            "comparisons": self.comparisons,
        }


def run_all(
    projects: Iterable[Project], cfg: Optional[EvalConfig] = None
) -> ResultBundle:
    """Run every experiment family over the projects.

    The four families share one warm engine per project (indexes and the
    cross-query cache are built once, not once per family).
    """
    projects = list(projects)
    cfg = cfg or EvalConfig()
    runs = project_runs(projects, cfg)
    return ResultBundle(
        methods=run_method_prediction(projects, cfg, runs),
        arguments=run_argument_prediction(projects, cfg, runs),
        assignments=run_assignment_prediction(projects, cfg, runs),
        comparisons=run_comparison_prediction(projects, cfg, runs),
    )
