"""One-call evaluation runs bundling all four experiment families."""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import Iterable, List, Optional

from ..corpus.program import Project
from ..obs.runlog import RunLog
from .experiments import (
    ArgumentResult,
    EvalConfig,
    LookupResult,
    MethodCallResult,
    project_runs,
    run_argument_prediction,
    run_assignment_prediction,
    run_comparison_prediction,
    run_method_prediction,
)
from .persistence import load_results, save_results


@dataclass
class ResultBundle:
    """Results of one complete evaluation run."""

    methods: List[MethodCallResult] = field(default_factory=list)
    arguments: List[ArgumentResult] = field(default_factory=list)
    assignments: List[LookupResult] = field(default_factory=list)
    comparisons: List[LookupResult] = field(default_factory=list)

    def save(self, path: str) -> None:
        save_results(
            path,
            methods=self.methods,
            arguments=self.arguments,
            assignments=self.assignments,
            comparisons=self.comparisons,
        )

    @classmethod
    def load(cls, path: str) -> "ResultBundle":
        data = load_results(path)
        return cls(
            methods=data["methods"],
            arguments=data["arguments"],
            assignments=data["assignments"],
            comparisons=data["comparisons"],
        )

    def families(self) -> dict:
        return {
            "methods": self.methods,
            "arguments": self.arguments,
            "assignments": self.assignments,
            "comparisons": self.comparisons,
        }


def _phase(run_log: Optional[RunLog], name: str):
    return run_log.phase(name) if run_log is not None else nullcontext()


def run_all(
    projects: Iterable[Project],
    cfg: Optional[EvalConfig] = None,
    run_log: Optional[RunLog] = None,
) -> ResultBundle:
    """Run every experiment family over the projects.

    The four families share one warm engine per project (indexes and the
    cross-query cache are built once, not once per family).  With a
    ``run_log`` attached, each family is recorded as a phase and every
    timed query as a structured record (docs/OBSERVABILITY.md).
    """
    projects = list(projects)
    cfg = cfg or EvalConfig()
    runs = project_runs(projects, cfg)
    bundle = ResultBundle()
    with _phase(run_log, "eval/methods"):
        bundle.methods = run_method_prediction(projects, cfg, runs, run_log)
    with _phase(run_log, "eval/arguments"):
        bundle.arguments = run_argument_prediction(
            projects, cfg, runs, run_log)
    with _phase(run_log, "eval/assignments"):
        bundle.assignments = run_assignment_prediction(
            projects, cfg, runs, run_log)
    with _phase(run_log, "eval/comparisons"):
        bundle.comparisons = run_comparison_prediction(
            projects, cfg, runs, run_log)
    return bundle
