"""The pinned query battery for the builtin universes.

One battery per universe: a scope (locals / ``this`` by full type name)
plus the representative queries the repo pins everywhere — the golden
top-10 files under ``tests/golden/``, the bench workload, ``repro
stats``, and the CI trace-validation step all exercise these same
queries, so a ranking change surfaces consistently across all four.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..ide.session import CompletionSession
from ..ide.workspace import Workspace


class Battery:
    """Scope and queries for one builtin universe."""

    def __init__(
        self,
        universe: str,
        queries: List[str],
        locals: Optional[Dict[str, str]] = None,
        this_type: Optional[str] = None,
    ) -> None:
        self.universe = universe
        self.queries = list(queries)
        self.locals = dict(locals or {})
        self.this_type = this_type

    def session(
        self, workspace: Optional[Workspace] = None, n: int = 10
    ) -> CompletionSession:
        """A session over the battery's universe with its scope declared."""
        workspace = workspace or Workspace.builtin(self.universe)
        session = CompletionSession(workspace, n=n)
        for name, type_name in self.locals.items():
            session.declare(name, type_name)
        if self.this_type is not None:
            session.set_this(self.this_type)
        return session


BATTERIES: Dict[str, Battery] = {
    "paint": Battery(
        "paint",
        queries=["?", "?({img, size})", "?({img})", "img.?*f", "img.?m",
                 "size := ?"],
        locals={"img": "PaintDotNet.Document",
                "size": "System.Drawing.Size"},
    ),
    "geometry": Battery(
        "geometry",
        queries=["?", "?({point, shapeStyle})", "point.?*m", "this.?f",
                 "point.?*m >= this.?*m"],
        locals={"point": "DynamicGeometry.Point",
                "shapeStyle": "DynamicGeometry.ShapeStyle"},
        this_type="DynamicGeometry.EllipseArc",
    ),
    "bcl": Battery(
        "bcl",
        queries=["?", "?({now, span})", "now.?*f", "now.?m",
                 "now.?*m >= now.?*m"],
        locals={"now": "System.DateTime", "span": "System.TimeSpan"},
    ),
}


def battery_for(universe: str) -> Battery:
    try:
        return BATTERIES[universe]
    except KeyError:
        raise ValueError(
            "no battery for universe {!r}; pick one of {}".format(
                universe, ", ".join(sorted(BATTERIES))))
