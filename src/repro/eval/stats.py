"""Corpus census: the descriptive statistics behind Table 1.

The paper grounds its evaluation in corpus shape — how many calls, how
arguments are written (Fig. 14), how many arguments calls take (Fig. 10's
x-axis).  ``corpus_census`` computes that census per project; the report
renderer prints it alongside the result tables so readers can judge the
synthetic corpus at a glance.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, Iterable, List

from ..corpus.program import Project
from ..corpus.synthesis import classify_expr
from ..lang.ast import Literal


@dataclass
class ProjectCensus:
    """Shape statistics of one project."""

    name: str
    types: int = 0
    methods: int = 0
    impls: int = 0
    calls: int = 0
    assignments: int = 0
    comparisons: int = 0
    arguments: int = 0
    arity_histogram: Dict[int, int] = field(default_factory=dict)
    argument_kinds: Dict[str, int] = field(default_factory=dict)


def project_census(project: Project) -> ProjectCensus:
    census = ProjectCensus(name=project.name)
    census.types = len(project.ts.all_types())
    census.methods = sum(1 for _ in project.ts.all_methods())
    census.impls = len(project.impls)
    arity = Counter()
    kinds = Counter()
    for _impl, _index, call in project.iter_calls():
        census.calls += 1
        arity[call.method.arity] += 1
        for arg in call.args:
            census.arguments += 1
            if isinstance(arg, Literal):
                kinds["literal"] += 1
            else:
                kinds[classify_expr(arg)] += 1
    census.assignments = sum(1 for _ in project.iter_assignments())
    census.comparisons = sum(1 for _ in project.iter_comparisons())
    census.arity_histogram = dict(sorted(arity.items()))
    census.argument_kinds = dict(kinds.most_common())
    return census


def corpus_census(projects: Iterable[Project]) -> List[ProjectCensus]:
    rows = [project_census(p) for p in projects]
    total = ProjectCensus(name="Totals")
    for row in rows:
        total.types += row.types
        total.methods += row.methods
        total.impls += row.impls
        total.calls += row.calls
        total.assignments += row.assignments
        total.comparisons += row.comparisons
        total.arguments += row.arguments
        for arity, count in row.arity_histogram.items():
            total.arity_histogram[arity] = (
                total.arity_histogram.get(arity, 0) + count
            )
        for kind, count in row.argument_kinds.items():
            total.argument_kinds[kind] = (
                total.argument_kinds.get(kind, 0) + count
            )
    total.arity_histogram = dict(sorted(total.arity_histogram.items()))
    rows.append(total)
    return rows


def format_census(rows: List[ProjectCensus]) -> str:
    header = "{:<14s}{:>7s}{:>9s}{:>7s}{:>7s}{:>9s}{:>10s}{:>7s}".format(
        "Project", "types", "methods", "impls", "calls",
        "assigns", "compares", "args")
    lines = [header]
    for row in rows:
        lines.append(
            "{:<14s}{:>7d}{:>9d}{:>7d}{:>7d}{:>9d}{:>10d}{:>7d}".format(
                row.name, row.types, row.methods, row.impls, row.calls,
                row.assignments, row.comparisons, row.arguments,
            )
        )
    totals = rows[-1]
    if totals.arity_histogram:
        lines.append("")
        lines.append("call arity histogram: " + "  ".join(
            "{}:{}".format(arity, count)
            for arity, count in totals.arity_histogram.items()
        ))
    if totals.argument_kinds:
        total_args = sum(totals.argument_kinds.values())
        lines.append("argument kinds: " + "  ".join(
            "{} {:.0%}".format(kind, count / total_args)
            for kind, count in totals.argument_kinds.items()
        ))
    return "\n".join(lines)
