"""Aggregation of experiment results into the paper's figure series.

Every ``figureN`` function returns plain data (dicts/lists of floats) that
:mod:`repro.eval.report` renders as text; benchmarks print those renderings.
``None`` ranks (truth not found within the scan limit) count as "worse than
any bucket", exactly as an off-the-chart rank does in the paper's CDFs.
"""

from __future__ import annotations

from collections import Counter, OrderedDict
from typing import Dict, Iterable, List, Optional, Sequence

from .experiments import ArgumentResult, LookupResult, MethodCallResult

#: rank cut-offs reported throughout Sec. 5
DEFAULT_RANKS = (1, 2, 3, 5, 10, 20)


def cdf(
    ranks: Iterable[Optional[int]], ranks_at: Sequence[int] = DEFAULT_RANKS
) -> "OrderedDict[int, float]":
    """Proportion of queries whose rank is <= r, for each cut-off r."""
    values = list(ranks)
    total = len(values)
    result: "OrderedDict[int, float]" = OrderedDict()
    for cutoff in ranks_at:
        if total == 0:
            result[cutoff] = 0.0
        else:
            hits = sum(1 for r in values if r is not None and r <= cutoff)
            result[cutoff] = hits / total
    return result


def proportion_top(ranks: Iterable[Optional[int]], cutoff: int) -> float:
    values = list(ranks)
    if not values:
        return 0.0
    return sum(1 for r in values if r is not None and r <= cutoff) / len(values)


def mean_reciprocal_rank(ranks: Iterable[Optional[int]]) -> float:
    """MRR over a rank list; misses (``None``) contribute 0."""
    values = list(ranks)
    if not values:
        return 0.0
    return sum(1.0 / r for r in values if r is not None) / len(values)


def summary_metrics(ranks: Iterable[Optional[int]]) -> Dict[str, float]:
    """The standard retrieval summary for one query family."""
    values = list(ranks)
    found = sorted(r for r in values if r is not None)
    return {
        "count": float(len(values)),
        "found": float(len(found)),
        "mrr": mean_reciprocal_rank(values),
        "top1": proportion_top(values, 1),
        "top10": proportion_top(values, 10),
        "top20": proportion_top(values, 20),
        "median_rank": float(found[len(found) // 2]) if found else float("nan"),
    }


# ---------------------------------------------------------------------------
# Figure 9 — best rank CDF, split all / instance / static
# ---------------------------------------------------------------------------
def figure9(
    results: List[MethodCallResult], ranks_at: Sequence[int] = DEFAULT_RANKS
) -> Dict[str, "OrderedDict[int, float]"]:
    return {
        "All": cdf((r.best_rank for r in results), ranks_at),
        "Instance": cdf(
            (r.best_rank for r in results if not r.is_static), ranks_at
        ),
        "Static": cdf(
            (r.best_rank for r in results if r.is_static), ranks_at
        ),
    }


# ---------------------------------------------------------------------------
# Figure 10 — guessability by call arity, one vs two known arguments
# ---------------------------------------------------------------------------
def figure10(
    results: List[MethodCallResult], cutoff: int = 20
) -> "OrderedDict[int, Dict[str, float]]":
    by_arity: Dict[int, List[MethodCallResult]] = {}
    for result in results:
        by_arity.setdefault(result.arity, []).append(result)
    table: "OrderedDict[int, Dict[str, float]]" = OrderedDict()
    for arity in sorted(by_arity):
        bucket = by_arity[arity]
        table[arity] = {
            "count": float(len(bucket)),
            "two_args": proportion_top((r.best_rank for r in bucket), cutoff),
            "one_arg": proportion_top(
                (r.best_rank_single for r in bucket), cutoff
            ),
        }
    return table


# ---------------------------------------------------------------------------
# Figures 11 & 12 — rank difference vs. Intellisense
# ---------------------------------------------------------------------------
def _rank_differences(
    results: List[MethodCallResult], use_return: bool, not_found_rank: int
) -> List[int]:
    diffs: List[int] = []
    for result in results:
        if result.intellisense is None:
            continue
        ours = result.best_rank_return if use_return else result.best_rank
        if ours is None:
            ours = not_found_rank
        diffs.append(ours - result.intellisense)
    return diffs


def figure11(
    results: List[MethodCallResult],
    use_return: bool = False,
    not_found_rank: int = 100,
) -> Dict[str, float]:
    """Summary of (our rank − Intellisense rank): negative = we win.

    The paper's headline: "About 45% of the time, our position is at least
    10 higher than it is with Intellisense."
    """
    diffs = _rank_differences(results, use_return, not_found_rank)
    total = len(diffs)
    if total == 0:
        return {"count": 0.0}
    return {
        "count": float(total),
        "we_win_by_10+": sum(1 for d in diffs if d <= -10) / total,
        "we_win": sum(1 for d in diffs if d < 0) / total,
        "tie": sum(1 for d in diffs if d == 0) / total,
        "intellisense_wins": sum(1 for d in diffs if d > 0) / total,
        "intellisense_wins_by_10+": sum(1 for d in diffs if d >= 10) / total,
    }


def figure12(
    results: List[MethodCallResult], not_found_rank: int = 100
) -> Dict[str, float]:
    """Figure 11 with the return type known and used as a filter."""
    return figure11(results, use_return=True, not_found_rank=not_found_rank)


#: default band edges for the Figure 11 histogram (left-inclusive)
DIFF_BANDS = (-50, -20, -10, -5, -1, 0, 1, 5, 10, 20)


def figure11_histogram(
    results: List[MethodCallResult],
    use_return: bool = False,
    not_found_rank: int = 100,
    bands: Sequence[int] = DIFF_BANDS,
) -> "OrderedDict[str, float]":
    """The banded distribution the paper plots: share of calls whose rank
    difference (ours − Intellisense) falls in each band.  Negative = we
    rank higher."""
    diffs = _rank_differences(results, use_return, not_found_rank)
    table: "OrderedDict[str, float]" = OrderedDict()
    if not diffs:
        return table
    edges = list(bands)
    labels = ["< {}".format(edges[0])]
    for low, high in zip(edges, edges[1:]):
        labels.append("{}..{}".format(low, high - 1) if high - low > 1
                      else str(low))
    labels.append(">= {}".format(edges[-1]))
    counts = [0] * (len(edges) + 1)
    for diff in diffs:
        slot = len(edges)
        for index, edge in enumerate(edges):
            if diff < edge:
                slot = index
                break
        counts[slot] += 1
    total = len(diffs)
    for label, count in zip(labels, counts):
        table[label] = count / total
    return table


def figure9_by_project(
    results: List[MethodCallResult], ranks_at: Sequence[int] = DEFAULT_RANKS
) -> "OrderedDict[str, OrderedDict[int, float]]":
    """Per-project best-rank CDFs (the per-row view behind Table 1)."""
    by_project: "OrderedDict[str, List[MethodCallResult]]" = OrderedDict()
    for result in results:
        by_project.setdefault(result.project, []).append(result)
    return OrderedDict(
        (project, cdf((r.best_rank for r in bucket), ranks_at))
        for project, bucket in by_project.items()
    )


# ---------------------------------------------------------------------------
# Figure 13 — argument prediction CDF (with and without bare locals)
# ---------------------------------------------------------------------------
def figure13(
    results: List[ArgumentResult], ranks_at: Sequence[int] = DEFAULT_RANKS
) -> Dict[str, "OrderedDict[int, float]"]:
    guessable = [r for r in results if r.guessable]
    return {
        "Normal": cdf((r.rank for r in guessable), ranks_at),
        "No variables": cdf(
            (r.rank for r in guessable if not r.is_local), ranks_at
        ),
    }


# ---------------------------------------------------------------------------
# Figure 14 — how arguments are written
# ---------------------------------------------------------------------------
def figure14(results: List[ArgumentResult]) -> "OrderedDict[str, float]":
    counts = Counter(
        r.kind if r.guessable else "not guessable" for r in results
    )
    total = sum(counts.values())
    table: "OrderedDict[str, float]" = OrderedDict()
    for kind, count in counts.most_common():
        table[kind] = count / total if total else 0.0
    return table


# ---------------------------------------------------------------------------
# Figures 15 & 16 — lookup prediction CDFs per variant
# ---------------------------------------------------------------------------
def _lookup_figure(
    results: List[LookupResult],
    variants: Sequence[str],
    ranks_at: Sequence[int],
) -> "OrderedDict[str, OrderedDict[int, float]]":
    table: "OrderedDict[str, OrderedDict[int, float]]" = OrderedDict()
    for variant in variants:
        ranks = [r.rank for r in results if r.variant == variant]
        table[variant] = cdf(ranks, ranks_at)
    return table


def figure15(
    results: List[LookupResult], ranks_at: Sequence[int] = DEFAULT_RANKS
) -> "OrderedDict[str, OrderedDict[int, float]]":
    return _lookup_figure(results, ["Target", "Source", "Both"], ranks_at)


def figure16(
    results: List[LookupResult], ranks_at: Sequence[int] = DEFAULT_RANKS
) -> "OrderedDict[str, OrderedDict[int, float]]":
    return _lookup_figure(
        results, ["Left", "Right", "Both", "2xLeft", "2xRight"], ranks_at
    )
