"""Plain-text rendering of tables and figure series.

The benchmark harness prints these so a run regenerates the same rows the
paper reports.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Sequence

from .tables import Table1Row, Table2


def _pct(value: float) -> str:
    return "{:5.1f}%".format(100.0 * value)


def format_table1(rows: List[Table1Row]) -> str:
    """Render Table 1: per-project # calls / # top 10 / # top 10..20."""
    lines = ["{:<14s}{:>9s}{:>10s}{:>14s}".format(
        "Program", "# calls", "# top 10", "# top 10..20")]
    for row in rows:
        lines.append(
            "{:<14s}{:>9d}{:>10d}{:>14d}".format(
                row.project, row.calls, row.top10, row.top10_20
            )
        )
        if row.project == "Totals" and row.calls:
            lines.append(
                "{:<14s}{:>9s}{:>10s}{:>14s}".format(
                    "", "",
                    _pct(row.top10 / row.calls).strip(),
                    _pct(row.top10_20 / row.calls).strip(),
                )
            )
    return "\n".join(lines)


def format_cdf_series(
    title: str, series: Mapping[str, Mapping[int, float]]
) -> str:
    """Render a rank-CDF figure: one row per series, one column per rank
    cut-off."""
    cutoffs: Sequence[int] = ()
    for values in series.values():
        cutoffs = list(values.keys())
        break
    header = "{:<16s}".format(title) + "".join(
        "{:>9s}".format("<= {}".format(c)) for c in cutoffs
    )
    lines = [header]
    for name, values in series.items():
        lines.append(
            "{:<16s}".format(name)
            + "".join("{:>9s}".format(_pct(v)) for v in values.values())
        )
    return "\n".join(lines)


def format_figure10(table: Mapping[int, Dict[str, float]]) -> str:
    lines = ["{:<8s}{:>8s}{:>16s}{:>16s}".format(
        "arity", "count", "top20 (2 args)", "top20 (1 arg)")]
    for arity, row in table.items():
        lines.append(
            "{:<8d}{:>8d}{:>16s}{:>16s}".format(
                arity, int(row["count"]), _pct(row["two_args"]),
                _pct(row["one_arg"]),
            )
        )
    return "\n".join(lines)


def format_figure11(summary: Mapping[str, float], title: str) -> str:
    lines = [title]
    for key, value in summary.items():
        if key == "count":
            lines.append("  {:<24s}{:>8d}".format("calls compared", int(value)))
        else:
            lines.append("  {:<24s}{:>8s}".format(key, _pct(value)))
    return "\n".join(lines)


def format_figure14(table: Mapping[str, float]) -> str:
    lines = ["{:<16s}{:>10s}".format("argument kind", "share")]
    for kind, share in table.items():
        lines.append("{:<16s}{:>10s}".format(kind, _pct(share)))
    return "\n".join(lines)


def format_bar_chart(
    title: str, values: Mapping[str, float], width: int = 40
) -> str:
    """An ASCII bar chart for proportion-valued mappings (0..1)."""
    lines = [title]
    label_width = max((len(k) for k in values), default=0)
    for label, value in values.items():
        bar = "#" * max(0, round(width * min(1.0, max(0.0, value))))
        lines.append("  {:<{w}s} |{:<{bw}s}| {}".format(
            label, bar, _pct(value).strip(), w=label_width, bw=width))
    return "\n".join(lines)


def format_metrics(title: str, metrics: Mapping[str, float]) -> str:
    """One-line retrieval summary (count, MRR, top-1/10/20, median)."""
    if metrics.get("count", 0) == 0:
        return "{}: no queries".format(title)
    return (
        "{}: n={:d} found={:d}  MRR={:.3f}  top1={}  top10={}  top20={}  "
        "median={:.0f}".format(
            title,
            int(metrics["count"]),
            int(metrics["found"]),
            metrics["mrr"],
            _pct(metrics["top1"]).strip(),
            _pct(metrics["top10"]).strip(),
            _pct(metrics["top20"]).strip(),
            metrics["median_rank"],
        )
    )


def format_table2(grid: Table2) -> str:
    """Render the sensitivity grid: one row per experiment variant, one
    column per ranking configuration."""
    header = "{:<14s}{:<14s}{:>7s}".format("Family", "Row", "Count") + "".join(
        "{:>7s}".format(label) for label in grid.columns
    )
    lines = [header]
    for (family, row), by_label in grid.values.items():
        count = grid.counts.get((family, row), 0)
        cells = "".join(
            "{:>7s}".format("{:.2f}".format(by_label[label]))
            for label in grid.columns
        )
        lines.append("{:<14s}{:<14s}{:>7d}".format(family, row, count) + cells)
    return "\n".join(lines)
