"""Query latency summaries (the "Speed" paragraphs of Sec. 5.1–5.3).

The paper reports the proportion of queries answered within interactive
budgets: 98.9% of method queries under half a second, 92% of argument
queries under a tenth of a second, 99.5% of lookup queries under half a
second.
"""

from __future__ import annotations

from typing import Dict, Iterable, List

from .experiments import ArgumentResult, LookupResult, MethodCallResult


def speed_summary(seconds: Iterable[float]) -> Dict[str, float]:
    """Latency distribution: count, percentiles, budget hit-rates."""
    values = sorted(seconds)
    if not values:
        return {"count": 0.0}

    def percentile(q: float) -> float:
        index = min(len(values) - 1, int(q * len(values)))
        return values[index]

    return {
        "count": float(len(values)),
        "p50_ms": 1000.0 * percentile(0.50),
        "p90_ms": 1000.0 * percentile(0.90),
        "p99_ms": 1000.0 * percentile(0.99),
        "under_100ms": sum(1 for v in values if v < 0.1) / len(values),
        "under_500ms": sum(1 for v in values if v < 0.5) / len(values),
    }


def method_query_times(results: List[MethodCallResult]) -> List[float]:
    """Per-query times across every subset query (Sec. 5.1 measures "the
    query with the best result"; we expose both)."""
    times: List[float] = []
    for result in results:
        times.extend(result.query_seconds)
    return times


def best_method_query_times(results: List[MethodCallResult]) -> List[float]:
    return [r.best_query_seconds for r in results if r.best_rank is not None]


def argument_query_times(results: List[ArgumentResult]) -> List[float]:
    return [r.seconds for r in results if r.guessable]


def lookup_query_times(results: List[LookupResult]) -> List[float]:
    return [r.seconds for r in results]


def format_speed(title: str, summary: Dict[str, float]) -> str:
    if summary.get("count", 0) == 0:
        return "{}: no queries".format(title)
    return (
        "{}: n={:d}  p50={:.1f}ms  p90={:.1f}ms  p99={:.1f}ms  "
        "<100ms: {:.1f}%  <500ms: {:.1f}%".format(
            title,
            int(summary["count"]),
            summary["p50_ms"],
            summary["p90_ms"],
            summary["p99_ms"],
            100 * summary["under_100ms"],
            100 * summary["under_500ms"],
        )
    )
