"""The ``repro report`` document: manifest + figures + phase profile.

``generate_run_report`` wraps :func:`repro.eval.markdown.generate_report`
with the run-level observability sections (docs/OBSERVABILITY.md):

* a **run manifest** table — label, run id, git SHA, config signature,
  universe versions, seed — so a report is attributable to the exact
  code and configuration that produced it;
* the full evaluation report (tables and figures);
* a **phase timing** table from the run log's phase records and a
  per-family query rollup, so the report says where the wall-clock
  went, not just what the accuracy was.

The CLI writes this as ``EVAL_REPORT.md`` (the successor of the old
free-form ``full_eval_output.txt`` capture) and can keep the NDJSON run
log alongside it for ``repro diff`` / ``repro profile``.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional

from ..corpus.program import Project
from ..obs.profile import profile_run_log
from ..obs.runlog import RunLog
from .experiments import EvalConfig
from .markdown import generate_report


def _md_table(headers: List[str], rows: Iterable[List[str]]) -> List[str]:
    lines = ["| " + " | ".join(headers) + " |"]
    lines.append("|" + "|".join("---" for _ in headers) + "|")
    for row in rows:
        lines.append("| " + " | ".join(row) + " |")
    return lines


def _manifest_section(manifest: Dict[str, Any]) -> List[str]:
    universes = manifest.get("universes") or {}
    rows = [
        ["label", str(manifest.get("label"))],
        ["run id", str(manifest.get("run_id"))],
        ["git SHA", str(manifest.get("git_sha"))],
        ["config signature", str(manifest.get("config_signature"))],
        ["universes", ", ".join(
            "{} v{}".format(name, universes[name])
            for name in sorted(universes)) or "-"],
        ["seed", str(manifest.get("seed"))],
    ]
    return ["## Run manifest", ""] + _md_table(["key", "value"], rows) + [""]


def _phase_section(records: List[Dict[str, Any]]) -> List[str]:
    out: List[str] = []
    phases = [r for r in records if r.get("kind") == "phase"]
    if phases:
        out += ["## Phase timings", ""]
        out += _md_table(
            ["phase", "duration"],
            [[p["name"], "{:.1f} ms".format(p["duration_ms"])]
             for p in phases],
        )
        out.append("")

    queries = [r for r in records if r.get("kind") == "query"]
    if queries:
        families: Dict[str, Dict[str, float]] = {}
        for record in queries:
            family = record.get("family") or "(other)"
            bucket = families.setdefault(
                family, {"count": 0, "elapsed_ms": 0.0, "found": 0})
            bucket["count"] += 1
            bucket["elapsed_ms"] += record.get("elapsed_ms") or 0.0
            if record.get("status") == "ok":
                bucket["found"] += 1
        out += ["## Query rollup", ""]
        out += _md_table(
            ["family", "queries", "ok", "total time"],
            [[name, str(int(bucket["count"])), str(int(bucket["found"])),
              "{:.1f} ms".format(bucket["elapsed_ms"])]
             for name, bucket in sorted(families.items())],
        )
        out.append("")

    profile = profile_run_log(records)
    phase_totals = profile.phase_totals()
    if phase_totals:
        out += ["## Span phase profile (traced queries)", ""]
        out += _md_table(
            ["phase", "inclusive"],
            [[name, "{:.2f} ms".format(value)]
             for name, value in sorted(
                 phase_totals.items(), key=lambda kv: -kv[1])],
        )
        out.append("")
    return out


def render_run_sections(run_log: RunLog) -> List[str]:
    """The manifest + phase markdown sections for one run log."""
    records = run_log.records()
    return _manifest_section(records[0]) + _phase_section(records)


def generate_run_report(
    projects: Iterable[Project],
    cfg: Optional[EvalConfig] = None,
    title: str = "Run report",
    run_log: Optional[RunLog] = None,
) -> str:
    """Run the full evaluation and render manifest + figures + phases.

    ``run_log`` should be the log the corpus build already wrote to (so
    its corpus phases show up); the evaluation families are appended to
    it here.  Without one, a fresh unlabelled log is created just for
    the phase sections.
    """
    projects = list(projects)
    if run_log is None:
        run_log = RunLog("report")
    if not run_log.records()[0]["universes"]:
        run_log.annotate(universes={
            project.name: project.ts.version for project in projects
        })
    body = generate_report(
        projects, cfg, title="Evaluation", run_log=run_log
    )
    out: List[str] = ["# {}".format(title), ""]
    out += _manifest_section(run_log.records()[0])
    out.append(body)
    out += _phase_section(run_log.records())
    return "\n".join(out)
