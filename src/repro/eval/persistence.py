"""Persistence and regression comparison for evaluation results.

``save_results`` writes one evaluation run (all four experiment families)
to JSON; ``load_results`` restores it; ``compare_runs`` diffs two runs'
headline metrics so corpus or ranking changes show up as explicit deltas —
the regression-tracking loop a maintained reproduction needs.
"""

from __future__ import annotations

import json
from dataclasses import asdict
from typing import Any, Dict, Iterable, List

from .experiments import ArgumentResult, LookupResult, MethodCallResult
from .figures import summary_metrics

_FORMAT = "repro-results"


def results_document(
    methods: Iterable[MethodCallResult],
    arguments: Iterable[ArgumentResult],
    assignments: Iterable[LookupResult],
    comparisons: Iterable[LookupResult],
) -> Dict[str, Any]:
    return {
        "format": _FORMAT,
        "version": 1,
        "methods": [asdict(r) for r in methods],
        "arguments": [asdict(r) for r in arguments],
        "assignments": [asdict(r) for r in assignments],
        "comparisons": [asdict(r) for r in comparisons],
    }


def save_results(path: str, **families: Iterable) -> None:
    """``save_results(path, methods=..., arguments=..., assignments=...,
    comparisons=...)``"""
    document = results_document(
        families.get("methods", ()),
        families.get("arguments", ()),
        families.get("assignments", ()),
        families.get("comparisons", ()),
    )
    with open(path, "w") as handle:
        json.dump(document, handle)


def load_results(path: str) -> Dict[str, List]:
    with open(path) as handle:
        document = json.load(handle)
    if document.get("format") != _FORMAT:
        raise ValueError("not a repro results document")
    return {
        "methods": [MethodCallResult(**r) for r in document["methods"]],
        "arguments": [ArgumentResult(**r) for r in document["arguments"]],
        "assignments": [LookupResult(**r) for r in document["assignments"]],
        "comparisons": [LookupResult(**r) for r in document["comparisons"]],
    }


def headline_metrics(results: Dict[str, List]) -> Dict[str, Dict[str, float]]:
    """The headline summary per family (what regressions are judged on)."""
    headlines: Dict[str, Dict[str, float]] = {}
    methods = results.get("methods", [])
    if methods:
        headlines["methods"] = summary_metrics([r.best_rank for r in methods])
    arguments = [r for r in results.get("arguments", []) if r.guessable]
    if arguments:
        headlines["arguments"] = summary_metrics([r.rank for r in arguments])
    for family in ("assignments", "comparisons"):
        rows = results.get(family, [])
        if rows:
            headlines[family] = summary_metrics([r.rank for r in rows])
    return headlines


def compare_runs(
    baseline: Dict[str, List],
    candidate: Dict[str, List],
    tolerance: float = 0.02,
) -> Dict[str, Dict[str, float]]:
    """Per-family metric deltas (candidate − baseline).

    Entries whose |delta| exceeds ``tolerance`` on the proportions (top1 /
    top10 / top20 / mrr) are flagged with a ``"regressed"`` /
    ``"improved"`` marker key.
    """
    base = headline_metrics(baseline)
    cand = headline_metrics(candidate)
    report: Dict[str, Dict[str, float]] = {}
    for family in sorted(set(base) | set(cand)):
        deltas: Dict[str, float] = {}
        base_metrics = base.get(family, {})
        cand_metrics = cand.get(family, {})
        for key in ("mrr", "top1", "top10", "top20"):
            if key in base_metrics and key in cand_metrics:
                deltas[key] = cand_metrics[key] - base_metrics[key]
        worst = min(deltas.values(), default=0.0)
        best = max(deltas.values(), default=0.0)
        if worst < -tolerance:
            deltas["regressed"] = 1.0
        elif best > tolerance:
            deltas["improved"] = 1.0
        report[family] = deltas
    return report


def format_comparison(report: Dict[str, Dict[str, float]]) -> str:
    lines = ["{:<14s}{:>9s}{:>9s}{:>9s}{:>9s}  {}".format(
        "family", "dMRR", "dtop1", "dtop10", "dtop20", "verdict")]
    for family, deltas in report.items():
        verdict = "regressed" if deltas.get("regressed") else (
            "improved" if deltas.get("improved") else "stable")
        lines.append(
            "{:<14s}{:>+9.3f}{:>+9.3f}{:>+9.3f}{:>+9.3f}  {}".format(
                family,
                deltas.get("mrr", 0.0),
                deltas.get("top1", 0.0),
                deltas.get("top10", 0.0),
                deltas.get("top20", 0.0),
                verdict,
            )
        )
    return "\n".join(lines)
