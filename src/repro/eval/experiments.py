"""Experiment runners for the paper's evaluation (Sec. 5.1–5.3).

Each runner replays queries extracted from the corpus projects and records
where the ground-truth expression ranks.  Runners are pure functions of
(projects, config) and return flat result lists; :mod:`repro.eval.figures`
and :mod:`repro.eval.tables` aggregate them into the paper's tables/figures.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from typing import Iterable, List, Optional, Tuple

from ..analysis.abstract_types import AbstractTypeAnalysis
from ..analysis.scope import Context
from ..baselines.intellisense import intellisense_rank
from ..corpus.oracle import ImplAbstractTypes
from ..corpus.program import MethodImpl, Project
from ..engine.completer import CompletionEngine, EngineConfig
from ..engine.ranking import AbstractTypeOracle, RankingConfig
from ..lang.ast import Call, Var
from ..lang.printer import to_source
from ..obs.runlog import RunLog
from . import queries


def _log_query(
    run_log: Optional[RunLog],
    pe,
    family: str,
    project: str,
    rank: Optional[int],
    seconds: float,
) -> None:
    """One run-log record per timed eval query (rank queries bypass
    ``complete_query``, so the engine-level emission never sees them)."""
    if run_log is None:
        return
    run_log.query_event(
        to_source(pe),
        family=family,
        project=project,
        rank=rank,
        status="ok" if rank is not None else "not_found",
        elapsed_ms=seconds * 1000.0,
    )


@dataclass
class EvalConfig:
    """Knobs of an evaluation run."""

    ranking: RankingConfig = field(default_factory=RankingConfig)
    #: scan depth: ranks beyond this count as "not found"
    limit: int = 100
    #: deterministic per-project site caps (None = everything)
    max_calls_per_project: Optional[int] = None
    max_arguments_per_project: Optional[int] = None
    max_assignments_per_project: Optional[int] = None
    max_comparisons_per_project: Optional[int] = None
    #: also compute the return-type-filtered ranks (Fig. 12)
    with_return_type: bool = True
    #: also compute the Intellisense baseline ranks (Fig. 11)
    with_intellisense: bool = True
    #: abstract types: "exclude" re-runs inference per site hiding the
    #: query and later code (the paper's protocol); "full" analyses the
    #: whole corpus once; "none" disables the oracle
    abstypes: str = "exclude"
    #: when true, query contexts contain only the locals declared *before*
    #: the query's statement (strict liveness) rather than all of the
    #: method's locals
    scoped_locals: bool = False

    def engine_config(self) -> EngineConfig:
        return EngineConfig(ranking=self.ranking)

    def context_for(self, impl: MethodImpl, stmt_index: int, ts) -> Context:
        if self.scoped_locals:
            return impl.context_at(ts, stmt_index)
        return impl.context(ts)


@dataclass
class MethodCallResult:
    """One call site of the Sec. 5.1 experiment."""

    project: str
    method_name: str
    arity: int
    is_static: bool
    #: best rank over argument subsets of size <= 2
    best_rank: Optional[int]
    #: best rank over single-argument subsets only (Fig. 10's lower series)
    best_rank_single: Optional[int]
    #: best rank when the return type is known (Fig. 12); None if not run
    best_rank_return: Optional[int]
    #: alphabetic Intellisense rank (Fig. 11); None if not run
    intellisense: Optional[int]
    #: wall-clock of the best-performing query
    best_query_seconds: float
    #: wall-clock of every subset query
    query_seconds: List[float]


@dataclass
class ArgumentResult:
    """One argument position of the Sec. 5.2 experiment."""

    project: str
    kind: str
    guessable: bool
    is_local: bool
    rank: Optional[int]
    seconds: float


@dataclass
class LookupResult:
    """One query of the Sec. 5.3 experiment (assignments or comparisons)."""

    project: str
    variant: str
    rank: Optional[int]
    seconds: float


class _ProjectRun:
    """Per-project engine + abstract-type analysis cache.

    Analyses are cached per call site; iterating sites in order means each
    analysis is built once and shared by every query at that site.
    """

    def __init__(self, project: Project, cfg: EvalConfig) -> None:
        self.project = project
        self.cfg = cfg
        self.engine = CompletionEngine(project.ts, cfg.engine_config())
        self.engine.warm()
        self._full_analysis: Optional[AbstractTypeAnalysis] = None
        self._site_key: Optional[Tuple[int, int]] = None
        self._site_analysis: Optional[AbstractTypeAnalysis] = None

    def oracle_for(
        self, impl: MethodImpl, stmt_index: int
    ) -> Optional[AbstractTypeOracle]:
        mode = self.cfg.abstypes
        if mode == "none":
            return None
        if mode == "full":
            if self._full_analysis is None:
                self._full_analysis = AbstractTypeAnalysis(self.project)
            return ImplAbstractTypes(self._full_analysis, impl)
        key = (id(impl), stmt_index)
        if key != self._site_key:
            self._site_key = key
            self._site_analysis = AbstractTypeAnalysis(
                self.project, exclude_from=(impl, stmt_index)
            )
        assert self._site_analysis is not None
        return ImplAbstractTypes(self._site_analysis, impl)


def project_runs(
    projects: Iterable[Project], cfg: EvalConfig
) -> "dict[str, _ProjectRun]":
    """One warm engine (plus analysis caches) per project.

    Historically every family runner built a fresh engine per project,
    so a full evaluation paid four index builds per project.  Build this
    map once and pass it to each runner — ``run_all`` and
    ``generate_report`` do — and all four families share warm indexes
    and the cross-query cache.
    """
    return {project.name: _ProjectRun(project, cfg) for project in projects}


def _run_for(
    project: Project,
    cfg: EvalConfig,
    runs: "Optional[dict[str, _ProjectRun]]",
) -> _ProjectRun:
    """The shared run for ``project``, or a fresh one when no map was
    given (or the map was built for a different config — ranking-variant
    sweeps like Table 2 must not reuse engines across configs)."""
    if runs is None:
        return _ProjectRun(project, cfg)
    run = runs.get(project.name)
    if run is None or run.cfg is not cfg:
        run = _ProjectRun(project, cfg)
        runs[project.name] = run
    return run


def _capped(items: Iterable, cap: Optional[int]) -> List:
    items = list(items)
    if cap is not None:
        return items[:cap]
    return items


# ---------------------------------------------------------------------------
# Sec. 5.1 — predicting method names
# ---------------------------------------------------------------------------
def run_method_prediction(
    projects: Iterable[Project],
    cfg: Optional[EvalConfig] = None,
    runs: "Optional[dict[str, _ProjectRun]]" = None,
    run_log: Optional[RunLog] = None,
) -> List[MethodCallResult]:
    cfg = cfg or EvalConfig()
    results: List[MethodCallResult] = []
    for project in projects:
        run = _run_for(project, cfg, runs)
        sites = _capped(
            (s for s in project.iter_calls() if s[2].method.arity >= 2),
            cfg.max_calls_per_project,
        )
        for impl, index, call in sites:
            results.append(_evaluate_call(run, impl, index, call, run_log))
    return results


def _evaluate_call(
    run: _ProjectRun, impl: MethodImpl, index: int, call: Call,
    run_log: Optional[RunLog] = None,
) -> MethodCallResult:
    cfg = run.cfg
    context = cfg.context_for(impl, index, run.project.ts)
    oracle = run.oracle_for(impl, index)
    subsets = queries.method_query_subsets(call)

    best_rank: Optional[int] = None
    best_single: Optional[int] = None
    best_seconds = 0.0
    all_seconds: List[float] = []
    for subset in subsets:
        pe = queries.unknown_call_query(subset)
        started = time.perf_counter()
        rank = run.engine.method_rank(
            pe, context, call.method, limit=cfg.limit, abstypes=oracle
        )
        elapsed = time.perf_counter() - started
        all_seconds.append(elapsed)
        _log_query(run_log, pe, "methods", run.project.name, rank, elapsed)
        if rank is not None:
            if best_rank is None or rank < best_rank:
                best_rank = rank
                best_seconds = elapsed
            if len(subset) == 1 and (best_single is None or rank < best_single):
                best_single = rank

    best_return: Optional[int] = None
    if cfg.with_return_type:
        expected = call.method.return_type or run.project.ts.void_type
        for subset in subsets:
            pe = queries.unknown_call_query(subset)
            rank = run.engine.method_rank(
                pe,
                context,
                call.method,
                limit=cfg.limit,
                abstypes=oracle,
                expected_type=expected,
            )
            if rank is not None and (best_return is None or rank < best_return):
                best_return = rank

    baseline: Optional[int] = None
    if cfg.with_intellisense:
        baseline = intellisense_rank(run.project.ts, call)

    return MethodCallResult(
        project=run.project.name,
        method_name=call.method.full_name,
        arity=call.method.arity,
        is_static=call.method.is_static,
        best_rank=best_rank,
        best_rank_single=best_single,
        best_rank_return=best_return,
        intellisense=baseline,
        best_query_seconds=best_seconds,
        query_seconds=all_seconds,
    )


# ---------------------------------------------------------------------------
# Sec. 5.2 — predicting method arguments
# ---------------------------------------------------------------------------
def run_argument_prediction(
    projects: Iterable[Project],
    cfg: Optional[EvalConfig] = None,
    runs: "Optional[dict[str, _ProjectRun]]" = None,
    run_log: Optional[RunLog] = None,
) -> List[ArgumentResult]:
    cfg = cfg or EvalConfig()
    results: List[ArgumentResult] = []
    for project in projects:
        run = _run_for(project, cfg, runs)
        budget = cfg.max_arguments_per_project
        for impl, index, call in project.iter_calls():
            if budget is not None and budget <= 0:
                break
            context = cfg.context_for(impl, index, project.ts)
            for position, arg in enumerate(call.args):
                if budget is not None:
                    if budget <= 0:
                        break
                    budget -= 1
                kind = queries.argument_kind(arg)
                guessable = queries.is_guessable_argument(
                    arg, context, run.engine.config
                )
                if not guessable:
                    results.append(
                        ArgumentResult(
                            project=project.name,
                            kind=kind,
                            guessable=False,
                            is_local=isinstance(arg, Var),
                            rank=None,
                            seconds=0.0,
                        )
                    )
                    continue
                oracle = run.oracle_for(impl, index)
                pe = queries.argument_query(call, position)
                started = time.perf_counter()
                rank = run.engine.rank_of(
                    pe, context, call, limit=cfg.limit, abstypes=oracle
                )
                elapsed = time.perf_counter() - started
                _log_query(run_log, pe, "arguments", project.name, rank,
                           elapsed)
                results.append(
                    ArgumentResult(
                        project=project.name,
                        kind=kind,
                        guessable=True,
                        is_local=isinstance(arg, Var),
                        rank=rank,
                        seconds=elapsed,
                    )
                )
    return results


# ---------------------------------------------------------------------------
# Sec. 5.3 — predicting field lookups
# ---------------------------------------------------------------------------
def run_assignment_prediction(
    projects: Iterable[Project],
    cfg: Optional[EvalConfig] = None,
    runs: "Optional[dict[str, _ProjectRun]]" = None,
    run_log: Optional[RunLog] = None,
) -> List[LookupResult]:
    cfg = cfg or EvalConfig()
    results: List[LookupResult] = []
    for project in projects:
        run = _run_for(project, cfg, runs)
        sites = _capped(
            project.iter_assignments(), cfg.max_assignments_per_project
        )
        for impl, index, assign in sites:
            context = cfg.context_for(impl, index, project.ts)
            for variant, strip_target, strip_source in queries.ASSIGNMENT_VARIANTS:
                pe = queries.assignment_query(assign, strip_target, strip_source)
                if pe is None:
                    continue
                oracle = run.oracle_for(impl, index)
                started = time.perf_counter()
                rank = run.engine.rank_of(
                    pe, context, assign, limit=cfg.limit, abstypes=oracle
                )
                elapsed = time.perf_counter() - started
                _log_query(run_log, pe, "assignments", project.name, rank,
                           elapsed)
                results.append(
                    LookupResult(
                        project=project.name,
                        variant=variant,
                        rank=rank,
                        seconds=elapsed,
                    )
                )
    return results


def run_comparison_prediction(
    projects: Iterable[Project],
    cfg: Optional[EvalConfig] = None,
    runs: "Optional[dict[str, _ProjectRun]]" = None,
    run_log: Optional[RunLog] = None,
) -> List[LookupResult]:
    cfg = cfg or EvalConfig()
    results: List[LookupResult] = []
    for project in projects:
        run = _run_for(project, cfg, runs)
        sites = _capped(
            project.iter_comparisons(), cfg.max_comparisons_per_project
        )
        for impl, index, compare in sites:
            context = cfg.context_for(impl, index, project.ts)
            for variant, strip_left, strip_right in queries.COMPARISON_VARIANTS:
                pe = queries.comparison_query(compare, strip_left, strip_right)
                if pe is None:
                    continue
                oracle = run.oracle_for(impl, index)
                started = time.perf_counter()
                rank = run.engine.rank_of(
                    pe, context, compare, limit=cfg.limit, abstypes=oracle
                )
                elapsed = time.perf_counter() - started
                _log_query(run_log, pe, "comparisons", project.name, rank,
                           elapsed)
                results.append(
                    LookupResult(
                        project=project.name,
                        variant=variant,
                        rank=rank,
                        seconds=elapsed,
                    )
                )
    return results


def with_ranking(cfg: EvalConfig, ranking: RankingConfig) -> EvalConfig:
    """A copy of ``cfg`` using a different ranking configuration."""
    return replace(cfg, ranking=ranking)
