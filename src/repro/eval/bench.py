"""The ``repro bench`` harness: a pinned workload with regression gating.

Runs four kinds of workloads and writes one schema-versioned
``BENCH_<label>.json``:

* **paper** — the Figure-2-style queries over each builtin universe
  (paint / geometry / bcl), the workload the paper's speed claims are
  about;
* **scaling** — synthetic universes of growing size (the
  ``benchmarks/test_scaling.py`` spec), checking latency grows slower
  than the universe;
* **repeated** — the paper workload replayed against one warm engine
  vs. a cache-disabled engine, measuring the cross-query cache's
  speedup and hit rate (docs/PERFORMANCE.md);
* **mutate** — the scaling workload primed warm, then a single-type
  member edit followed by a re-query, repeated; run once under
  fine-grained (footprint) invalidation and once under the coarse
  clear-on-mutation fallback, so the document carries the edit-time
  warm-path speedup and the fraction of cache entries the fine path
  preserved.

``compare_bench(old, new)`` gates regressions: any workload whose p95
latency grew by more than ``threshold`` (default 20%) *and* by more
than an absolute floor (default 2 ms, so micro-benchmarks don't flap on
scheduler noise) is a failure.  The CLI maps that to exit codes
0 (ok) / 1 (regression) / 2 (bad input).
"""

from __future__ import annotations

import json
import time
from contextlib import nullcontext
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..analysis.scope import Context
from ..engine.completer import CompletionEngine, CompletionRequest, EngineConfig
from ..ide.workspace import Workspace
from ..lang.parser import parse
from ..obs.diff import PhaseDelta, top_phase_delta
from ..obs.runlog import RunLog

_FORMAT = "repro-bench"
VERSION = 1

#: default regression gate: p95 must grow by BOTH more than this ratio
#: and more than ``FLOOR_MS`` before we call it a regression.
THRESHOLD = 0.20
FLOOR_MS = 2.0

# ----------------------------------------------------------------------
# pinned workloads
# ----------------------------------------------------------------------

#: the paper workload: per universe, the declared locals / ``this`` and
#: the query list.  Pinned — editing this invalidates old BENCH files as
#: a comparison baseline, so don't, without bumping ``VERSION``.
PAPER_WORKLOADS: List[Dict[str, Any]] = [
    {
        "name": "paint",
        "universe": "paint",
        "locals": {"img": "PaintDotNet.Document", "size": "System.Drawing.Size"},
        "this": None,
        "queries": ["?", "?({img, size})", "?({img})", "img.?*f", "size := ?"],
    },
    {
        "name": "geometry",
        "universe": "geometry",
        "locals": {
            "point": "DynamicGeometry.Point",
            "shapeStyle": "DynamicGeometry.ShapeStyle",
        },
        "this": "DynamicGeometry.EllipseArc",
        "queries": ["?({point, shapeStyle})", "point.?*m", "this.?f", "? := ?"],
    },
    {
        "name": "bcl",
        "universe": "bcl",
        "locals": {"now": "System.DateTime", "span": "System.TimeSpan"},
        "this": None,
        "queries": ["?", "?({now, span})", "now.?*f", "now.?*m >= now.?*m"],
    },
]

#: synthetic-universe sizes (num_classes) for the scaling workload
SCALING_SIZES = [10, 30, 90]
SCALING_SIZES_QUICK = [10, 30]

#: synthetic-universe sizes for the cold-start battery — an order of
#: magnitude past the scaling workload, where rebuilding derived state
#: costs seconds and the pack-vs-rebuild ratio is meaningful
COLDSTART_SIZES = [300, 900]
COLDSTART_SIZES_QUICK = [100, 300]

_REPEATS = 5
_REPEATS_QUICK = 3


def _percentile(sorted_values: List[float], q: float) -> float:
    if not sorted_values:
        return 0.0
    index = min(len(sorted_values) - 1, int(q * len(sorted_values)))
    return sorted_values[index]


def _workload_context(workspace: Workspace, spec: Dict[str, Any]) -> Context:
    locals_map = {
        name: workspace.resolve_type(type_name)
        for name, type_name in spec["locals"].items()
    }
    this_type = (
        workspace.resolve_type(spec["this"]) if spec.get("this") else None
    )
    return workspace.context(locals=locals_map, this_type=this_type)


def _time_queries(
    engine: CompletionEngine,
    context: Context,
    queries: List[str],
    repeats: int,
) -> Tuple[List[float], int]:
    """Run each query ``repeats`` times; per-run latencies (ms) and the
    total expansion-step count."""
    timings: List[float] = []
    steps = 0
    for _ in range(repeats):
        requests = [
            CompletionRequest(pe=parse(q, context), context=context)
            for q in queries
        ]
        started = time.perf_counter()
        outcomes = engine.complete_many(requests)
        timings.append((time.perf_counter() - started) * 1000.0)
        steps += sum(outcome.steps for outcome in outcomes)
    return timings, steps


def _phase_profile(spec: Dict[str, Any]) -> Dict[str, float]:
    """Aggregate span durations (ms) by span name over one traced run of
    the workload's queries, on a fresh engine so every phase runs cold.

    Profiled *separately* from the timed runs: tracing has a per-span
    cost and disables stream sharing, so it must never touch the
    latencies the regression gate compares.
    """
    workspace = Workspace.builtin(spec["universe"])
    context = _workload_context(workspace, spec)
    totals: Dict[str, float] = {}
    for query in spec["queries"]:
        outcome = workspace.engine.complete_query(
            parse(query, context), context, trace=True
        )
        for span in outcome.trace or []:
            if span["duration_ms"] is not None:
                totals[span["name"]] = (
                    totals.get(span["name"], 0.0) + span["duration_ms"]
                )
    return {name: round(totals[name], 4) for name in sorted(totals)}


def _paper_workloads(
    repeats: int, run_log: Optional[RunLog] = None
) -> List[Dict[str, Any]]:
    results = []
    for spec in PAPER_WORKLOADS:
        workspace = Workspace.builtin(spec["universe"])
        workspace.run_log = run_log
        context = _workload_context(workspace, spec)
        phase = (run_log.phase("bench/paper/{}".format(spec["name"]))
                 if run_log is not None else nullcontext())
        with phase:
            timings, steps = _time_queries(
                workspace.engine, context, spec["queries"], repeats
            )
        ordered = sorted(timings)
        stats = workspace.cache_stats() or {}
        results.append({
            "name": "paper/{}".format(spec["name"]),
            "queries": len(spec["queries"]),
            "repeats": repeats,
            "p50_ms": _percentile(ordered, 0.50),
            "p95_ms": _percentile(ordered, 0.95),
            "steps": steps,
            "cache_hit_rate": stats.get("hit_rate", 0.0),
            # additive, so VERSION stays 1: old documents simply lack it
            "phases": _phase_profile(spec),
        })
    return results


def _scaling_spec(size: int):
    """The pinned synthetic-universe spec shared by the scaling and
    mutate workloads (same classes, same seed, same client)."""
    from ..corpus import SynthesisSpec

    return SynthesisSpec(
        name="scale{}".format(size),
        seed=4242,
        namespace_root="Scale",
        nouns=["Alpha", "Beta", "Gamma", "Delta"],
        num_classes=size,
        num_helper_classes=max(2, size // 5),
        num_client_classes=1,
    )


def _scaling_workloads(sizes: List[int], repeats: int) -> List[Dict[str, Any]]:
    from ..corpus import synthesize_project

    results = []
    for size in sizes:
        project = synthesize_project(_scaling_spec(size))
        engine = CompletionEngine(project.ts)
        context = project.impls[0].context(project.ts)
        locals_list = list(context.locals.items())[:2]
        query = "?({{{}}})".format(", ".join(name for name, _ in locals_list))
        timings, steps = _time_queries(engine, context, [query], repeats)
        ordered = sorted(timings)
        results.append({
            "name": "scaling/{}".format(size),
            "queries": 1,
            "repeats": repeats,
            "p50_ms": _percentile(ordered, 0.50),
            "p95_ms": _percentile(ordered, 0.95),
            "steps": steps,
        })
    return results


def _mutation_target(ts, context: Context):
    """Deterministic edit target for the mutate workload: the
    lexicographically first type with members that is neither the query
    context's ``this`` type nor a local's type — the "edit somewhere
    else, keep the warm cache" case fine-grained invalidation exists
    for."""
    excluded = {
        typedef.full_name for typedef in context.locals.values()
    }
    if context.this_type is not None:
        excluded.add(context.this_type.full_name)
    candidates = sorted(ts.all_types(), key=lambda t: t.full_name)
    for typedef in candidates:
        if typedef.full_name in excluded:
            continue
        if typedef.methods or typedef.fields:
            return typedef
    return candidates[0]


def _mutate_workloads(
    sizes: List[int], repeats: int
) -> Tuple[List[Dict[str, Any]], List[Dict[str, Any]]]:
    """The mutate-then-requery battery.

    Per scaling size: prime a warm engine with the scaling query, then
    ``repeats`` times add a field to one deterministically-chosen type
    and re-run the query warm.  Measured twice on identical fresh
    universes — once under the default fine-grained invalidation, once
    with ``EngineConfig(fine_invalidation=False)`` (the coarse
    clear-on-mutation fallback) — so the speedup attributes the win to
    footprint-based invalidation alone.  Returns the gateable
    ``mutate/<size>`` workload entries (timings of the default = fine
    engine) and the per-size fine-vs-coarse summary for the document's
    ``mutate`` section.
    """
    from ..codemodel import Field
    from ..corpus import synthesize_project

    workloads: List[Dict[str, Any]] = []
    summary: List[Dict[str, Any]] = []
    for size in sizes:
        measured: Dict[str, Dict[str, Any]] = {}
        for mode, fine in (("fine", True), ("coarse", False)):
            project = synthesize_project(_scaling_spec(size))
            ts = project.ts
            engine = CompletionEngine(
                ts, config=EngineConfig(fine_invalidation=fine)
            )
            context = project.impls[0].context(ts)
            locals_list = list(context.locals.items())[:2]
            query = "?({{{}}})".format(
                ", ".join(name for name, _ in locals_list)
            )
            _time_queries(engine, context, [query], 1)  # prime the cache
            target = _mutation_target(ts, context)
            timings: List[float] = []
            steps = 0
            for index in range(repeats):
                target.add_field(
                    Field("bench_probe_{}".format(index), ts.string_type)
                )
                run, run_steps = _time_queries(engine, context, [query], 1)
                timings += run
                steps += run_steps
            stats = engine.cache_stats() or {}
            preserved = stats.get("entries_preserved", 0)
            dropped = stats.get("entries_dropped", 0)
            touched = preserved + dropped
            measured[mode] = {
                "ordered": sorted(timings),
                "total_ms": sum(timings),
                "steps": steps,
                "preserved_fraction": (
                    preserved / touched if touched else 0.0
                ),
            }
        fine = measured["fine"]
        coarse = measured["coarse"]
        workloads.append({
            "name": "mutate/{}".format(size),
            "queries": 1,
            "repeats": repeats,
            "p50_ms": _percentile(fine["ordered"], 0.50),
            "p95_ms": _percentile(fine["ordered"], 0.95),
            "steps": fine["steps"],
        })
        summary.append({
            "size": size,
            "repeats": repeats,
            "fine_ms": fine["total_ms"],
            "coarse_ms": coarse["total_ms"],
            "speedup": (
                coarse["total_ms"] / fine["total_ms"]
                if fine["total_ms"] > 0 else 0.0
            ),
            "preserved_fraction": fine["preserved_fraction"],
        })
    return workloads, summary


def _rebuild_derived(doc: Dict[str, Any]):
    """One full cold rebuild — exactly the state a pack restores: the
    universe from its serialized document, the method-index buckets,
    every reachability walk (both ``allow_methods`` flags, at the
    engine's default depth), and the dependency graph with all closures.
    Returns the warm engine."""
    from ..serialize import load_type_system

    ts = load_type_system(doc)
    engine = CompletionEngine(ts)
    engine.index.refresh()
    for typedef in ts.all_types():
        engine.reachability.reachable(typedef, False)
        engine.reachability.reachable(typedef, True)
    graph = engine.dependency_graph()
    for name in list(graph._forward):
        graph.closure(name)
        graph.reverse_closure(name)
    return engine


def _coldstart_workloads(
    sizes: List[int], repeats: int
) -> Tuple[List[Dict[str, Any]], List[Dict[str, Any]]]:
    """The pack-load vs. rebuild battery (docs/ARTIFACTS.md).

    Per size: synthesize the pinned scaling universe, build a pack into
    a temp dir, then time (a) a full cold rebuild of every derived
    structure from the serialized universe and (b)
    :func:`repro.pack.load_pack`.  Rebuilds are capped at 3 repetitions
    (they dominate wall clock at the large sizes); loads run the full
    ``repeats``.  Also answers the scaling query on both engines and
    records whether the top-10 matches — the gateable ``coldstart/*``
    workload entries track the *load* latency.
    """
    import os
    import tempfile

    from ..corpus import synthesize_project
    from ..lang.printer import to_source
    from ..pack import build_pack, load_pack
    from ..serialize import dump_type_system

    workloads: List[Dict[str, Any]] = []
    summary: List[Dict[str, Any]] = []
    with tempfile.TemporaryDirectory(prefix="repro-coldstart-") as tmp:
        for size in sizes:
            project = synthesize_project(_scaling_spec(size))
            workspace = Workspace(
                project.ts, name="scale{}".format(size))
            doc = dump_type_system(project.ts)
            path = os.path.join(tmp, "scale{}.pack".format(size))
            started = time.perf_counter()
            build_pack(workspace, path)
            build_ms = (time.perf_counter() - started) * 1000.0
            pack_bytes = os.path.getsize(path)

            rebuild_times: List[float] = []
            rebuilt_engine = None
            for _ in range(min(repeats, 3)):
                started = time.perf_counter()
                rebuilt_engine = _rebuild_derived(doc)
                rebuild_times.append(
                    (time.perf_counter() - started) * 1000.0)

            load_times: List[float] = []
            loaded = None
            for _ in range(repeats):
                started = time.perf_counter()
                loaded = load_pack(path)
                load_times.append((time.perf_counter() - started) * 1000.0)

            context = project.impls[0].context(project.ts)
            locals_list = list(context.locals.items())[:2]
            query = "?({{{}}})".format(
                ", ".join(name for name, _ in locals_list))

            def _top10(engine: CompletionEngine, ts) -> List[str]:
                scope = Context(ts, locals={
                    name: ts.get(typedef.full_name)
                    for name, typedef in locals_list
                })
                outcome = engine.complete_many([
                    CompletionRequest(pe=parse(query, scope), context=scope)
                ])[0]
                return [to_source(c.expr) for c in outcome.completions[:10]]

            identical = (_top10(rebuilt_engine, rebuilt_engine.ts)
                         == _top10(loaded.engine, loaded.ts))

            ordered_loads = sorted(load_times)
            rebuild_ms = _percentile(sorted(rebuild_times), 0.50)
            load_ms = _percentile(ordered_loads, 0.50)
            workloads.append({
                "name": "coldstart/{}".format(size),
                "queries": 0,
                "repeats": repeats,
                "p50_ms": load_ms,
                "p95_ms": _percentile(ordered_loads, 0.95),
                "steps": 0,
            })
            summary.append({
                "size": size,
                "rebuild_ms": rebuild_ms,
                "load_ms": load_ms,
                "speedup": (rebuild_ms / load_ms) if load_ms > 0 else 0.0,
                "pack_bytes": pack_bytes,
                "build_ms": build_ms,
                "identical_top10": identical,
            })
    return workloads, summary


def _repeated_workload(repeats: int) -> Dict[str, Any]:
    """The paper workload replayed: warm cached engine vs. cache-disabled.

    The acceptance bar for the cross-query cache is an end-to-end >=2x
    speedup here; the result carries both totals so BENCH files document
    the claim.
    """
    spec = PAPER_WORKLOADS[0]

    cold_ws = Workspace.builtin(
        spec["universe"], config=EngineConfig(enable_cache=False)
    )
    cold_context = _workload_context(cold_ws, spec)
    cold_timings, cold_steps = _time_queries(
        cold_ws.engine, cold_context, spec["queries"], repeats
    )

    warm_ws = Workspace.builtin(spec["universe"])
    warm_context = _workload_context(warm_ws, spec)
    warm_timings, warm_steps = _time_queries(
        warm_ws.engine, warm_context, spec["queries"], repeats
    )

    # first warm run is the cache-filling run; the speedup claim is about
    # the steady state, so compare totals excluding it when possible.
    steady = warm_timings[1:] or warm_timings
    cold_steady = cold_timings[1:] or cold_timings
    cold_total = sum(cold_steady)
    warm_total = sum(steady)
    stats = warm_ws.cache_stats() or {}
    return {
        "workload": "paper/{}".format(spec["name"]),
        "repeats": repeats,
        "cold_ms": cold_total,
        "warm_ms": warm_total,
        "cold_steps": cold_steps,
        "warm_steps": warm_steps,
        "speedup": (cold_total / warm_total) if warm_total > 0 else 0.0,
        "hit_rate": stats.get("hit_rate", 0.0),
    }


# ----------------------------------------------------------------------
# document: run / save / load
# ----------------------------------------------------------------------

def run_bench(
    label: str = "local",
    quick: bool = False,
    log: Optional[Callable[[str], None]] = None,
    run_log: Optional[RunLog] = None,
    seed: Optional[int] = None,
) -> Dict[str, Any]:
    """Run the pinned workload and return the BENCH document.

    With ``run_log`` attached, each workload section is recorded as a
    phase and the paper workloads' engines emit per-query records, so
    the NDJSON log doubles as a profiling input for ``repro diff``.

    ``seed`` is provenance only — the workload itself is pinned — and is
    stamped into both the document and the run-log manifest so bench
    artifacts carry the same reproducibility field fuzz runs do.
    """
    emit = log or (lambda _line: None)
    if run_log is not None and seed is not None:
        run_log.annotate(seed=seed)
    repeats = _REPEATS_QUICK if quick else _REPEATS
    sizes = SCALING_SIZES_QUICK if quick else SCALING_SIZES

    def _phase(name: str):
        return run_log.phase(name) if run_log is not None else nullcontext()

    emit("paper workloads ({} universes)...".format(len(PAPER_WORKLOADS)))
    workloads = _paper_workloads(repeats, run_log)
    emit("scaling workloads (sizes {})...".format(sizes))
    with _phase("bench/scaling"):
        workloads += _scaling_workloads(sizes, repeats)
    emit("mutate-then-requery workloads (sizes {})...".format(sizes))
    with _phase("bench/mutate"):
        mutate_workloads, mutate_summary = _mutate_workloads(sizes, repeats)
    workloads += mutate_workloads
    coldstart_sizes = COLDSTART_SIZES_QUICK if quick else COLDSTART_SIZES
    emit("cold-start workloads: pack load vs. rebuild (sizes {})...".format(
        coldstart_sizes))
    with _phase("bench/coldstart"):
        coldstart_workloads, coldstart_summary = _coldstart_workloads(
            coldstart_sizes, repeats)
    workloads += coldstart_workloads
    emit("repeated-query workload (cache on vs. off)...")
    with _phase("bench/repeated"):
        repeated = _repeated_workload(repeats)

    return {
        "format": _FORMAT,
        "version": VERSION,
        "label": label,
        "quick": quick,
        "seed": seed,
        "workloads": workloads,
        "repeated": repeated,
        # additive, so VERSION stays 1: old documents simply lack it
        "mutate": mutate_summary,
        "coldstart": coldstart_summary,
    }


def validate_bench(document: Any) -> Dict[str, Any]:
    """Check a loaded document against the schema; raise ValueError."""
    if not isinstance(document, dict):
        raise ValueError("not a repro bench document")
    if document.get("format") != _FORMAT:
        raise ValueError("not a repro bench document")
    if document.get("version") != VERSION:
        raise ValueError(
            "unsupported bench schema version {!r} (want {})".format(
                document.get("version"), VERSION
            )
        )
    workloads = document.get("workloads")
    if not isinstance(workloads, list):
        raise ValueError("bench document has no workload list")
    for workload in workloads:
        for key in ("name", "p50_ms", "p95_ms", "steps"):
            if key not in workload:
                raise ValueError(
                    "workload entry missing {!r}".format(key)
                )
    return document


def save_bench(path: str, document: Dict[str, Any]) -> None:
    validate_bench(document)
    with open(path, "w") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")


def load_bench(path: str) -> Dict[str, Any]:
    with open(path) as handle:
        try:
            document = json.load(handle)
        except json.JSONDecodeError as error:
            raise ValueError("not valid JSON: {}".format(error))
    return validate_bench(document)


# ----------------------------------------------------------------------
# comparison / regression gate
# ----------------------------------------------------------------------

def compare_bench(
    old: Dict[str, Any],
    new: Dict[str, Any],
    threshold: float = THRESHOLD,
    floor_ms: float = FLOOR_MS,
) -> Tuple[bool, List[str]]:
    """Diff two BENCH documents; ``(ok, report_lines)``.

    A workload regresses when its p95 grew by more than ``threshold``
    *and* more than ``floor_ms`` over the baseline.  Workloads present
    in only one document are reported but never fail the gate (the
    pinned set can grow).

    Regressed workloads are attributed to a phase: when both documents
    carry a ``phases`` profile for the workload, the report names the
    phase whose traced time grew the most, and the final verdict names
    the single worst phase across all regressed workloads — so a red
    gate says *which phase* regressed, not just that one did.
    """
    validate_bench(old)
    validate_bench(new)
    old_by_name = {w["name"]: w for w in old["workloads"]}
    lines: List[str] = []
    ok = True
    worst_phase: Optional[PhaseDelta] = None
    for workload in new["workloads"]:
        name = workload["name"]
        baseline = old_by_name.pop(name, None)
        if baseline is None:
            lines.append("  {:<16s} (new workload, no baseline)".format(name))
            continue
        old_p95 = float(baseline["p95_ms"])
        new_p95 = float(workload["p95_ms"])
        delta = new_p95 - old_p95
        ratio = (new_p95 / old_p95 - 1.0) if old_p95 > 0 else 0.0
        regressed = ratio > threshold and delta > floor_ms
        lines.append(
            "  {:<16s} p95 {:>8.2f} ms -> {:>8.2f} ms  ({:+.1f}%){}".format(
                name, old_p95, new_p95, 100.0 * ratio,
                "  REGRESSION" if regressed else "",
            )
        )
        if regressed:
            ok = False
            top = top_phase_delta(
                baseline.get("phases"), workload.get("phases")
            )
            if top is not None:
                lines.append(
                    "    top regressed phase: {} ({:.2f} ms -> {:.2f} ms, "
                    "{:+.2f} ms)".format(
                        top.name, top.old_ms, top.new_ms, top.delta_ms
                    )
                )
                if worst_phase is None or top.delta_ms > worst_phase.delta_ms:
                    worst_phase = top
            else:
                lines.append(
                    "    (no phase profile on both sides; cannot attribute)"
                )
    for name in old_by_name:
        lines.append("  {:<16s} (dropped from workload)".format(name))
    verdict = "ok" if ok else "p95 regression over {:.0f}% (+{:.0f} ms floor)".format(
        100.0 * threshold, floor_ms
    )
    if not ok and worst_phase is not None:
        verdict += "; top regressed phase: {} ({:+.2f} ms)".format(
            worst_phase.name, worst_phase.delta_ms
        )
    lines.append("comparison vs {!r}: {}".format(old.get("label"), verdict))
    return ok, lines


def render_bench(document: Dict[str, Any]) -> List[str]:
    """Human-readable summary lines for one BENCH document."""
    lines = ["bench '{}'{}".format(
        document.get("label"), " (quick)" if document.get("quick") else "")]
    lines.append("  {:<16s}{:>10s}{:>10s}{:>10s}".format(
        "workload", "p50 ms", "p95 ms", "steps"))
    for workload in document["workloads"]:
        lines.append("  {:<16s}{:>10.2f}{:>10.2f}{:>10d}".format(
            workload["name"], workload["p50_ms"], workload["p95_ms"],
            int(workload["steps"])))
        phases = workload.get("phases")
        if phases:
            top = sorted(phases.items(), key=lambda kv: -kv[1])[:3]
            lines.append("    phases (traced run): {}".format(
                ", ".join("{} {:.2f} ms".format(name, value)
                          for name, value in top)))
    repeated = document.get("repeated")
    if repeated:
        lines.append(
            "  repeated-query: cold {:.1f} ms vs warm {:.1f} ms -> "
            "{:.1f}x speedup (cache hit rate {:.1%})".format(
                repeated["cold_ms"], repeated["warm_ms"],
                repeated["speedup"], repeated["hit_rate"]))
    for entry in document.get("mutate") or []:
        lines.append(
            "  mutate/{}: coarse {:.1f} ms vs fine {:.1f} ms -> "
            "{:.1f}x speedup ({:.0%} of touched cache entries "
            "preserved)".format(
                entry["size"], entry["coarse_ms"], entry["fine_ms"],
                entry["speedup"], entry["preserved_fraction"]))
    for entry in document.get("coldstart") or []:
        lines.append(
            "  coldstart/{}: rebuild {:.1f} ms vs pack load {:.1f} ms -> "
            "{:.1f}x speedup ({} KiB pack, built in {:.0f} ms, top-10 "
            "{})".format(
                entry["size"], entry["rebuild_ms"], entry["load_ms"],
                entry["speedup"], entry["pack_bytes"] // 1024,
                entry["build_ms"],
                "identical" if entry["identical_top10"] else "DIVERGED"))
    return lines
