"""Parser for the partial-expression concrete syntax.

Parsing is context-sensitive in the same way C# name lookup is: ``img`` may
be a local, ``PaintDotNet.Document.FromFile`` starts with a type name,
``Distance(point, ?)`` is a bare method-name query.  ``parse(source,
context)`` therefore takes a :class:`repro.analysis.scope.Context` and
resolves names while parsing.

Grammar (tokens in caps)::

    query    := binary EOF
    binary   := operand ((':=' | CMPOP) operand)?
    operand  := primary postfix*
    primary  := '?' '(' '{' exprs '}' ')'     -- unknown call
              | '?' | '0' | NUMBER | STRING | 'null' | 'true' | 'false'
              | IDENT
    postfix  := SUFFIX                        -- .?f .?*f .?m .?*m
              | '.' IDENT
              | '(' exprs? ')'
"""

from __future__ import annotations

import re
from typing import TYPE_CHECKING, List, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..analysis.scope import Context

from ..codemodel.members import Field, Method
from ..codemodel.types import TypeDef
from .ast import (
    COMPARE_OPS,
    Call,
    Expr,
    FieldAccess,
    Literal,
    TypeLiteral,
    Unfilled,
    Var,
    is_complete,
)
from .partial import (
    Hole,
    KnownCall,
    PartialAssign,
    PartialCompare,
    SuffixHole,
    UnknownCall,
)


class ParseError(ValueError):
    """Raised on any lexical, syntactic or name-resolution failure.

    ``span`` is the offending ``(start, end)`` character range of the
    query string when the failure can be localised (lexical errors), or
    ``None``; ``repro lint`` forwards it in RA022 diagnostics.
    """

    def __init__(self, message: str, span: "Optional[Tuple[int, int]]" = None):
        super().__init__(message)
        self.span = span


_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<suffix>\.\?\*?[fm])
  | (?P<number>\d+\.\d+|\d+)
  | (?P<string>"[^"]*")
  | (?P<ident>[A-Za-z_][A-Za-z0-9_]*)
  | (?P<op>:=|<=|>=|==|!=|[?(){},.<>=])
    """,
    re.VERBOSE,
)


def _tokenize(source: str) -> List[Tuple[str, str]]:
    tokens: List[Tuple[str, str]] = []
    pos = 0
    while pos < len(source):
        match = _TOKEN_RE.match(source, pos)
        if match is None:
            raise ParseError(
                "unexpected character {!r} at offset {}".format(source[pos], pos),
                span=(pos, pos + 1),
            )
        pos = match.end()
        kind = match.lastgroup
        if kind == "ws":
            continue
        tokens.append((kind, match.group()))
    tokens.append(("eof", ""))
    return tokens


class _Parser:
    def __init__(self, source: str, context: Context) -> None:
        self.source = source
        self.ctx = context
        self.tokens = _tokenize(source)
        self.pos = 0

    # -- token helpers -------------------------------------------------
    def _peek(self) -> Tuple[str, str]:
        return self.tokens[self.pos]

    def _next(self) -> Tuple[str, str]:
        token = self.tokens[self.pos]
        self.pos += 1
        return token

    def _accept(self, text: str) -> bool:
        kind, value = self._peek()
        if kind == "op" and value == text:
            self.pos += 1
            return True
        return False

    def _expect(self, text: str) -> None:
        if not self._accept(text):
            kind, value = self._peek()
            raise ParseError(
                "expected {!r} but found {!r} in {!r}".format(text, value, self.source)
            )

    def _error(self, message: str) -> ParseError:
        return ParseError("{} in {!r}".format(message, self.source))

    # -- grammar ---------------------------------------------------------
    def parse_query(self) -> Expr:
        expr = self._binary()
        kind, value = self._peek()
        if kind != "eof":
            raise self._error("trailing input starting at {!r}".format(value))
        return expr

    def _binary(self) -> Expr:
        left = self._operand()
        kind, value = self._peek()
        if kind == "op" and value in (":=", "="):
            self._next()
            right = self._operand()
            return self._make_assign(left, right)
        if kind == "op" and value in COMPARE_OPS:
            self._next()
            right = self._operand()
            return self._make_compare(left, value, right)
        return left

    def _make_assign(self, left: Expr, right: Expr) -> Expr:
        if is_complete(left) and is_complete(right):
            from .ast import Assign

            return Assign(left, right)
        return PartialAssign(left, right)

    def _make_compare(self, left: Expr, op: str, right: Expr) -> Expr:
        if is_complete(left) and is_complete(right):
            from .ast import Compare

            return Compare(left, right, op)
        return PartialCompare(left, right, op)

    def _operand(self) -> Expr:
        state = self._primary()
        while True:
            kind, value = self._peek()
            if kind == "suffix":
                self._next()
                expr = self._finish(state)
                methods = value.endswith("m")
                star = "*" in value
                state = _Resolved(SuffixHole(expr, methods=methods, star=star))
            elif kind == "op" and value == ".":
                self._next()
                name_kind, name = self._next()
                if name_kind != "ident":
                    raise self._error("expected a member name after '.'")
                state = state.member(name, self)
            elif kind == "op" and value == "(":
                self._next()
                args = self._call_args()
                state = state.call(args, self)
            else:
                return self._finish(state)

    def _call_args(self) -> Tuple[Expr, ...]:
        args: List[Expr] = []
        if self._accept(")"):
            return ()
        while True:
            args.append(self._binary())
            if self._accept(")"):
                return tuple(args)
            self._expect(",")

    def _primary(self) -> "_State":
        kind, value = self._next()
        if kind == "op" and value == "?":
            if self._accept("("):
                self._expect("{")
                args: List[Expr] = [self._binary()]
                while self._accept(","):
                    args.append(self._binary())
                self._expect("}")
                self._expect(")")
                return _Resolved(UnknownCall(tuple(args)))
            return _Resolved(Hole())
        if kind == "number":
            if value == "0":
                return _Resolved(Unfilled())
            return _Resolved(self._number_literal(value))
        if kind == "string":
            return _Resolved(Literal(value[1:-1], self.ctx.ts.string_type))
        if kind == "ident":
            if value == "null":
                return _Resolved(Literal(None, self.ctx.ts.object_type))
            if value in ("true", "false"):
                return _Resolved(
                    Literal(value == "true", self.ctx.ts.primitive("bool"))
                )
            if value == "new" and not self.ctx.has_local("new"):
                name_kind, name = self._next()
                if name_kind != "ident":
                    raise self._error("expected a type name after 'new'")
                return _NewChain([name])
            return _Chain([value])
        raise self._error("unexpected token {!r}".format(value))

    def resolve_ctor(self, parts: List[str], args: Tuple[Expr, ...]) -> Expr:
        typedef, rest = self._longest_type_prefix(parts)
        if typedef is None or rest:
            raise self._error(
                "unknown type in 'new {}'".format(".".join(parts))
            )
        candidates = [m for m in typedef.methods if m.is_constructor]
        if not candidates:
            raise self._error(
                "type {} has no constructors".format(typedef.full_name)
            )
        return self._make_call(tuple(candidates), args)

    def _number_literal(self, text: str) -> Literal:
        if "." in text:
            return Literal(float(text), self.ctx.ts.primitive("double"))
        return Literal(int(text), self.ctx.ts.primitive("int"))

    def _finish(self, state: "_State") -> Expr:
        return state.finish(self)

    # -- name resolution -------------------------------------------------
    def resolve_chain(
        self, parts: List[str], call_args: Optional[Tuple[Expr, ...]]
    ) -> Expr:
        """Resolve a dotted identifier chain, optionally ending in a call."""
        if self.ctx.has_local(parts[0]):
            expr: Expr = self.ctx.local_var(parts[0])
            rest = parts[1:]
            return self._resolve_members(expr, rest, call_args)
        type_prefix, rest = self._longest_type_prefix(parts)
        if type_prefix is not None:
            if not rest:
                raise self._error(
                    "type name {} is not an expression".format(type_prefix.full_name)
                )
            return self._resolve_static(type_prefix, rest, call_args)
        if len(parts) == 1 and call_args is not None:
            candidates = self.ctx.methods_named(parts[0])
            if not candidates:
                raise self._error("unknown method name {!r}".format(parts[0]))
            return self._make_call(tuple(candidates), call_args)
        raise self._error("cannot resolve name {!r}".format(".".join(parts)))

    def _longest_type_prefix(
        self, parts: List[str]
    ) -> Tuple[Optional[TypeDef], List[str]]:
        for end in range(len(parts), 0, -1):
            candidate = ".".join(parts[:end])
            typedef = self.ctx.ts.try_get(candidate)
            if typedef is not None:
                return typedef, parts[end:]
        # unqualified unique simple name, e.g. `Math` for DynamicGeometry.Math
        matches = [
            t for t in self.ctx.ts.all_types() if t.name == parts[0] and t.namespace
        ]
        if len(matches) == 1:
            return matches[0], parts[1:]
        return None, parts

    def _resolve_static(
        self,
        typedef: TypeDef,
        parts: List[str],
        call_args: Optional[Tuple[Expr, ...]],
    ) -> Expr:
        name = parts[0]
        if len(parts) == 1 and call_args is not None:
            candidates = [
                m for m in typedef.methods if m.is_static and m.name == name
            ]
            if not candidates:
                # flat qualified instance-call syntax, receiver in the
                # argument list: `PaintDotNet.Document.OnDeserialization(0, s)`
                candidates = [
                    m
                    for m in self.ctx.ts.instance_methods(typedef)
                    if m.name == name
                ]
            if not candidates:
                raise self._error(
                    "no method {!r} on {}".format(name, typedef.full_name)
                )
            return self._make_call(tuple(candidates), call_args)
        member = self._find_static_field(typedef, name)
        if member is None:
            raise self._error(
                "no static member {!r} on {}".format(name, typedef.full_name)
            )
        expr = FieldAccess(TypeLiteral(typedef), member)
        return self._resolve_members(expr, parts[1:], call_args)

    def _find_static_field(self, typedef: TypeDef, name: str) -> Optional[Field]:
        for member in typedef.declared_lookups():
            if member.is_static and member.name == name:
                return member
        return None

    def _resolve_members(
        self,
        expr: Expr,
        parts: List[str],
        call_args: Optional[Tuple[Expr, ...]],
    ) -> Expr:
        """Apply instance member lookups; the last may be a method call."""
        for index, name in enumerate(parts):
            is_last = index == len(parts) - 1
            if is_last and call_args is not None:
                return self._instance_call(expr, name, call_args)
            expr = self._instance_lookup(expr, name)
        if call_args is not None and not parts:
            raise self._error("cannot call an expression without a method name")
        return expr

    def _instance_lookup(self, expr: Expr, name: str) -> Expr:
        base_type = expr.type
        if base_type is None:
            raise self._error("cannot look up {!r} on a typeless expression".format(name))
        for member in self.ctx.ts.instance_lookups(base_type):
            if member.name == name:
                return FieldAccess(expr, member)
        # zero-argument instance methods written without parens are not
        # allowed; require explicit `()`
        raise self._error(
            "no field or property {!r} on {}".format(name, base_type.full_name)
        )

    def _instance_call(
        self, receiver: Expr, name: str, args: Tuple[Expr, ...]
    ) -> Expr:
        base_type = receiver.type
        if base_type is None:
            raise self._error("cannot call {!r} on a typeless expression".format(name))
        candidates = [
            m for m in self.ctx.ts.instance_methods(base_type) if m.name == name
        ]
        if not candidates:
            raise self._error(
                "no method {!r} on {}".format(name, base_type.full_name)
            )
        return self._make_call(tuple(candidates), (receiver,) + args)

    def _make_call(
        self, candidates: Tuple[Method, ...], args: Tuple[Expr, ...]
    ) -> Expr:
        """Build a complete ``Call`` when unambiguous, else a ``KnownCall``.

        ``args`` align with ``all_params`` (receiver first when instance).
        """
        if all(is_complete(a) for a in args):
            viable = [m for m in candidates if self._args_fit(m, args)]
            if len(viable) == 1:
                return Call(viable[0], args)
        sized = [m for m in candidates if m.arity == len(args)]
        return KnownCall(tuple(sized) or candidates, args)

    def _args_fit(self, method: Method, args: Tuple[Expr, ...]) -> bool:
        params = method.all_params()
        if len(params) != len(args):
            return False
        for param, arg in zip(params, args):
            arg_type = arg.type
            if arg_type is None:
                continue  # Unfilled wildcard
            if not self.ctx.ts.implicitly_converts(arg_type, param.type):
                return False
        return True


class _State:
    """Postfix-parsing state: either a resolved expression or a pending
    dotted name chain."""

    def member(self, name: str, parser: _Parser) -> "_State":
        raise NotImplementedError

    def call(self, args: Tuple[Expr, ...], parser: _Parser) -> "_State":
        raise NotImplementedError

    def finish(self, parser: _Parser) -> Expr:
        raise NotImplementedError


class _Resolved(_State):
    def __init__(self, expr: Expr) -> None:
        self.expr = expr

    def member(self, name: str, parser: _Parser) -> _State:
        return _Member(self.expr, name)

    def call(self, args: Tuple[Expr, ...], parser: _Parser) -> _State:
        raise parser._error("cannot call a non-name expression")

    def finish(self, parser: _Parser) -> Expr:
        return self.expr


class _Member(_State):
    """A resolved expression followed by `.name` awaiting call-or-lookup."""

    def __init__(self, base: Expr, name: str) -> None:
        self.base = base
        self.name = name

    def member(self, name: str, parser: _Parser) -> _State:
        return _Member(parser._instance_lookup(self.base, self.name), name)

    def call(self, args: Tuple[Expr, ...], parser: _Parser) -> _State:
        return _Resolved(parser._instance_call(self.base, self.name, args))

    def finish(self, parser: _Parser) -> Expr:
        return parser._instance_lookup(self.base, self.name)


class _NewChain(_State):
    """A ``new``-prefixed dotted type name awaiting its argument list."""

    def __init__(self, parts: List[str]) -> None:
        self.parts = parts

    def member(self, name: str, parser: _Parser) -> _State:
        return _NewChain(self.parts + [name])

    def call(self, args: Tuple[Expr, ...], parser: _Parser) -> _State:
        return _Resolved(parser.resolve_ctor(self.parts, args))

    def finish(self, parser: _Parser) -> Expr:
        raise parser._error(
            "'new {}' needs an argument list".format(".".join(self.parts))
        )


class _Chain(_State):
    """An unresolved dotted identifier chain."""

    def __init__(self, parts: List[str]) -> None:
        self.parts = parts

    def member(self, name: str, parser: _Parser) -> _State:
        return _Chain(self.parts + [name])

    def call(self, args: Tuple[Expr, ...], parser: _Parser) -> _State:
        return _Resolved(parser.resolve_chain(self.parts, args))

    def finish(self, parser: _Parser) -> Expr:
        return parser.resolve_chain(self.parts, None)


def parse(source: str, context: Context) -> Expr:
    """Parse a (partial) expression against a scope context.

    Returns a complete-expression node when the input contains no holes and
    resolves unambiguously, otherwise a partial-expression node.
    """
    return _Parser(source, context).parse_query()
