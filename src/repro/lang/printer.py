"""Pretty-printer for complete and partial expressions.

``to_source`` emits the concrete syntax accepted by
:mod:`repro.lang.parser`, so printing and re-parsing (in the same context)
round-trips — a property-tested invariant.
"""

from __future__ import annotations

from .ast import (
    Assign,
    Call,
    Compare,
    Expr,
    FieldAccess,
    Literal,
    TypeLiteral,
    Unfilled,
    Var,
)
from .partial import (
    Hole,
    KnownCall,
    PartialAssign,
    PartialCompare,
    SuffixHole,
    UnknownCall,
)


def to_source(expr: Expr) -> str:
    """Render an expression tree to concrete syntax."""
    if isinstance(expr, Var):
        return expr.name
    if isinstance(expr, TypeLiteral):
        return expr.typedef.full_name
    if isinstance(expr, Literal):
        return _literal_text(expr)
    if isinstance(expr, Unfilled):
        return "0"
    if isinstance(expr, Hole):
        return "?"
    if isinstance(expr, FieldAccess):
        return "{}.{}".format(to_source(expr.base), expr.member.name)
    if isinstance(expr, Call):
        return _call_text(expr)
    if isinstance(expr, Assign):
        return "{} := {}".format(to_source(expr.lhs), to_source(expr.rhs))
    if isinstance(expr, Compare):
        return "{} {} {}".format(to_source(expr.lhs), expr.op, to_source(expr.rhs))
    if isinstance(expr, SuffixHole):
        return to_source(expr.base) + expr.suffix_text
    if isinstance(expr, UnknownCall):
        return "?({{{}}})".format(", ".join(to_source(a) for a in expr.args))
    if isinstance(expr, KnownCall):
        return _known_call_text(expr)
    if isinstance(expr, PartialAssign):
        return "{} := {}".format(to_source(expr.lhs), to_source(expr.rhs))
    if isinstance(expr, PartialCompare):
        return "{} {} {}".format(to_source(expr.lhs), expr.op, to_source(expr.rhs))
    raise TypeError("cannot print {!r}".format(type(expr).__name__))


def _literal_text(expr: Literal) -> str:
    value = expr.value
    if isinstance(value, str):
        return '"{}"'.format(value)
    if isinstance(value, bool):
        return "true" if value else "false"
    if value is None:
        return "null"
    return str(value)


def _call_text(expr: Call) -> str:
    method = expr.method
    if method.is_constructor:
        args = ", ".join(to_source(a) for a in expr.args)
        return "new {}({})".format(method.declaring_type.full_name, args)
    if method.is_static or isinstance(expr.args[0], Unfilled):
        # static calls, and instance calls whose receiver slot is an
        # unfilled `0`, print in the flat qualified style the paper uses
        # (e.g. `PaintDotNet.Document.OnDeserialization(img, size)`)
        args = ", ".join(to_source(a) for a in expr.args)
        return "{}.{}({})".format(method.declaring_type.full_name, method.name, args)
    receiver = to_source(expr.args[0])
    args = ", ".join(to_source(a) for a in expr.args[1:])
    return "{}.{}({})".format(receiver, method.name, args)


def _known_call_text(expr: KnownCall) -> str:
    # print in receiver-first style when every candidate is an instance
    # method; otherwise fall back to the flat `Name(args)` query style
    method = expr.candidates[0]
    if all(not m.is_static for m in expr.candidates) and expr.args:
        receiver = to_source(expr.args[0])
        args = ", ".join(to_source(a) for a in expr.args[1:])
        return "{}.{}({})".format(receiver, method.name, args)
    args = ", ".join(to_source(a) for a in expr.args)
    return "{}({})".format(method.name, args)
