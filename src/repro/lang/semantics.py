"""Semantics of partial expressions (Figure 6 of the paper).

Two entry points:

* :func:`well_typed` — does a complete expression type-check (with ``0``
  treated as a wildcard)?
* :func:`derivable` — is a complete expression reachable from a partial
  expression by the rewrite rules of Figure 6?  The completion engine is
  property-tested against this oracle: everything it emits must be
  derivable and well-typed.
"""

from __future__ import annotations

from itertools import permutations
from typing import TYPE_CHECKING, Iterator, List, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..analysis.scope import Context

from ..codemodel.typesystem import TypeSystem
from .ast import (
    Assign,
    Call,
    Compare,
    Expr,
    FieldAccess,
    Literal,
    TypeLiteral,
    Unfilled,
    Var,
    is_complete,
)
from .partial import (
    Hole,
    KnownCall,
    PartialAssign,
    PartialCompare,
    SuffixHole,
    UnknownCall,
)


# ---------------------------------------------------------------------------
# type checking
# ---------------------------------------------------------------------------
def well_typed(expr: Expr, ts: TypeSystem) -> bool:
    """Check a complete expression, treating ``Unfilled`` as any type."""
    if isinstance(expr, (Var, TypeLiteral, Literal, Unfilled)):
        return True
    if isinstance(expr, FieldAccess):
        if isinstance(expr.base, TypeLiteral):
            return expr.member.is_static
        base_type = expr.base.type
        declaring = expr.member.declaring_type
        if base_type is None or declaring is None:
            return False
        return ts.implicitly_converts(base_type, declaring) and well_typed(
            expr.base, ts
        )
    if isinstance(expr, Call):
        params = expr.method.all_params()
        if len(params) != len(expr.args):
            return False
        for param, arg in zip(params, expr.args):
            if not well_typed(arg, ts):
                return False
            arg_type = arg.type
            if arg_type is None:
                continue  # wildcard (Unfilled) or nested void—void rejected:
            if not ts.implicitly_converts(arg_type, param.type):
                return False
        return True
    if isinstance(expr, Assign):
        if not (well_typed(expr.lhs, ts) and well_typed(expr.rhs, ts)):
            return False
        lhs_type, rhs_type = expr.lhs.type, expr.rhs.type
        if lhs_type is None or rhs_type is None:
            return True
        return ts.implicitly_converts(rhs_type, lhs_type)
    if isinstance(expr, Compare):
        if not (well_typed(expr.lhs, ts) and well_typed(expr.rhs, ts)):
            return False
        lhs_type, rhs_type = expr.lhs.type, expr.rhs.type
        if lhs_type is None or rhs_type is None:
            return True
        return ts.comparable(lhs_type, rhs_type)
    return False


# ---------------------------------------------------------------------------
# chains (for ? and the .?* suffixes)
# ---------------------------------------------------------------------------
def is_chain_root(expr: Expr, context: Context) -> bool:
    """Is ``expr`` a legal start of a ``?`` completion: a live local, a
    static field/property, or a zero-argument static method call?"""
    if isinstance(expr, Var):
        return context.has_local(expr.name) and context.locals[expr.name] is expr.type
    if isinstance(expr, FieldAccess) and isinstance(expr.base, TypeLiteral):
        return expr.member.is_static
    if isinstance(expr, Call) and expr.method.is_static and not expr.args:
        return True
    return False


def _strip_one_lookup(expr: Expr, allow_methods: bool) -> Optional[Expr]:
    """Undo a single trailing lookup (or zero-arg instance call)."""
    if isinstance(expr, FieldAccess) and not isinstance(expr.base, TypeLiteral):
        return expr.base
    if (
        allow_methods
        and isinstance(expr, Call)
        and expr.method.is_zero_arg_instance
    ):
        return expr.args[0]
    return None


def chain_prefixes(expr: Expr, allow_methods: bool) -> Iterator[Expr]:
    """``expr`` and every prefix obtained by stripping trailing lookups."""
    current: Optional[Expr] = expr
    while current is not None:
        yield current
        current = _strip_one_lookup(current, allow_methods)


def is_hole_completion(expr: Expr, context: Context) -> bool:
    """``? -> v.?*m`` for some local/global ``v``: the completion must be a
    chain of lookups / zero-arg instance calls over a legal root."""
    for prefix in chain_prefixes(expr, allow_methods=True):
        if is_chain_root(prefix, context):
            return True
    return False


# ---------------------------------------------------------------------------
# derivability
# ---------------------------------------------------------------------------
def derivable(partial: Expr, complete: Expr, context: Context) -> bool:
    """Is ``complete`` a completion of ``partial`` per Figure 6?

    ``complete`` must itself be a complete expression (``Unfilled`` allowed)
    and is *not* checked for well-typedness here; pair with
    :func:`well_typed` for the full judgement.
    """
    if not is_complete(complete):
        return False
    return _derives(partial, complete, context)


def _derives(partial: Expr, complete: Expr, context: Context) -> bool:
    if isinstance(partial, Hole):
        return is_hole_completion(complete, context)
    if isinstance(partial, Unfilled):
        return isinstance(complete, Unfilled)
    if isinstance(partial, SuffixHole):
        return _derives_suffix(partial, complete, context)
    if isinstance(partial, UnknownCall):
        return _derives_unknown_call(partial, complete, context)
    if isinstance(partial, KnownCall):
        return _derives_known_call(partial, complete, context)
    if isinstance(partial, PartialAssign):
        return (
            isinstance(complete, Assign)
            and _derives(partial.lhs, complete.lhs, context)
            and _derives(partial.rhs, complete.rhs, context)
        )
    if isinstance(partial, PartialCompare):
        return (
            isinstance(complete, Compare)
            and complete.op == partial.op
            and _derives(partial.lhs, complete.lhs, context)
            and _derives(partial.rhs, complete.rhs, context)
        )
    # complete expressions derive exactly themselves (but their *parts* may
    # not contain partial nodes by construction)
    return partial == complete


def _derives_suffix(partial: SuffixHole, complete: Expr, context: Context) -> bool:
    if partial.star:
        for prefix in chain_prefixes(complete, allow_methods=partial.methods):
            if _derives(partial.base, prefix, context):
                return True
        return False
    # zero or one lookup
    if _derives(partial.base, complete, context):
        return True
    stripped = _strip_one_lookup(complete, allow_methods=partial.methods)
    return stripped is not None and _derives(partial.base, stripped, context)


def _derives_unknown_call(
    partial: UnknownCall, complete: Expr, context: Context
) -> bool:
    if not isinstance(complete, Call):
        return False
    args: List[Expr] = list(complete.args)
    if len(args) < len(partial.args):
        return False
    positions = range(len(args))
    for chosen in permutations(positions, len(partial.args)):
        if all(
            _derives(p, args[slot], context)
            for p, slot in zip(partial.args, chosen)
        ):
            rest_ok = all(
                isinstance(args[i], Unfilled)
                for i in positions
                if i not in chosen
            )
            if rest_ok:
                return True
    return False


def _derives_known_call(
    partial: KnownCall, complete: Expr, context: Context
) -> bool:
    if not isinstance(complete, Call):
        return False
    if complete.method not in partial.candidates:
        return False
    if len(complete.args) != len(partial.args):
        return False
    return all(
        _derives(p, c, context) for p, c in zip(partial.args, complete.args)
    )
