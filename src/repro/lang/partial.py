"""Partial-expression AST (Figure 5(b) of the paper).

The partial expression language extends the complete language with::

    ee     ::= ea | ? | 0
    ea     ::= e | ea.?f | ea.?*f | ea.?m | ea.?*m | ccall | ee := ee | ee < ee
    ccall  ::= ?({ee1, ..., een}) | methodName(ee1, ..., een)

``?`` is an unknown subexpression to fill in; ``0`` is a subexpression to
*ignore* (it stays ``0`` in completions); the ``.?`` suffixes ask for zero or
one (``.?f``/``.?m``) or zero or more (``.?*f``/``.?*m``) trailing lookups,
with the ``m`` variants also allowing zero-argument instance method calls;
``?({...})`` is a call to an unknown method whose argument *set* is given
(extra arguments may be synthesised as ``0`` and arguments may be reordered).
"""

from __future__ import annotations

from typing import Optional, Tuple

from ..codemodel.members import Method
from ..codemodel.types import TypeDef
from .ast import Expr, Unfilled


class PartialExpr(Expr):
    """Marker base class for nodes that are not complete expressions."""

    __slots__ = ()

    @property
    def type(self) -> Optional[TypeDef]:
        return None


class Hole(PartialExpr):
    """``?`` — an unknown subexpression.

    Interpreted by the completion engine as ``vars.?*m`` where ``vars``
    ranges over every live local and global (Sec. 4.2).
    """

    __slots__ = ()

    def key(self) -> tuple:
        return ("hole",)


#: ``0`` in a *query* is the same wildcard node that appears in completions.
Ignore = Unfilled


class SuffixHole(PartialExpr):
    """``base.?f`` / ``base.?*f`` / ``base.?m`` / ``base.?*m``.

    ``methods`` selects the ``m`` variants (zero-argument instance calls are
    allowed in addition to field/property lookups); ``star`` selects the
    repeated variants.
    """

    __slots__ = ("base", "methods", "star")

    def __init__(self, base: Expr, methods: bool, star: bool) -> None:
        self.base = base
        self.methods = methods
        self.star = star

    @property
    def suffix_text(self) -> str:
        return ".?{}{}".format("*" if self.star else "", "m" if self.methods else "f")

    def children(self) -> Tuple[Expr, ...]:
        return (self.base,)

    def key(self) -> tuple:
        return ("suffix", self.methods, self.star, self.base.key())


class UnknownCall(PartialExpr):
    """``?({ee1, ..., een})`` — a call to an unknown method.

    The arguments form a *set*: completions may place them in any distinct
    parameter positions of the chosen method and fill remaining positions
    with ``0``.
    """

    __slots__ = ("args",)

    def __init__(self, args: Tuple[Expr, ...]) -> None:
        assert args, "an unknown call needs at least one argument"
        self.args: Tuple[Expr, ...] = tuple(args)

    def children(self) -> Tuple[Expr, ...]:
        return self.args

    def key(self) -> tuple:
        return ("unknowncall", tuple(a.key() for a in self.args))


class KnownCall(PartialExpr):
    """``methodName(ee1, ..., een)`` with possibly-partial arguments.

    ``candidates`` are the overloads the name resolved to; ``args`` align
    positionally with each candidate's :meth:`Method.all_params` (receiver
    first for instance methods).  Candidates whose arity differs from
    ``len(args)`` are skipped during completion.
    """

    __slots__ = ("candidates", "args")

    def __init__(self, candidates: Tuple[Method, ...], args: Tuple[Expr, ...]) -> None:
        assert candidates, "a known call needs at least one candidate method"
        self.candidates: Tuple[Method, ...] = tuple(candidates)
        self.args: Tuple[Expr, ...] = tuple(args)

    @property
    def name(self) -> str:
        return self.candidates[0].name

    def children(self) -> Tuple[Expr, ...]:
        return self.args

    def key(self) -> tuple:
        return (
            "knowncall",
            tuple(m.full_name + "/" + str(len(m.params)) for m in self.candidates),
            tuple(a.key() for a in self.args),
        )


class PartialAssign(PartialExpr):
    """``ee := ee`` where either side may be partial."""

    __slots__ = ("lhs", "rhs")

    def __init__(self, lhs: Expr, rhs: Expr) -> None:
        self.lhs = lhs
        self.rhs = rhs

    def children(self) -> Tuple[Expr, ...]:
        return (self.lhs, self.rhs)

    def key(self) -> tuple:
        return ("passign", self.lhs.key(), self.rhs.key())


class PartialCompare(PartialExpr):
    """``ee < ee`` (any relational operator) where either side may be
    partial.  Completions must make the two sides' types comparable."""

    __slots__ = ("lhs", "op", "rhs")

    def __init__(self, lhs: Expr, rhs: Expr, op: str = "<") -> None:
        self.lhs = lhs
        self.op = op
        self.rhs = rhs

    def children(self) -> Tuple[Expr, ...]:
        return (self.lhs, self.rhs)

    def key(self) -> tuple:
        return ("pcmp", self.op, self.lhs.key(), self.rhs.key())
