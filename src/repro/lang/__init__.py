"""Expression language: complete & partial ASTs, parser, printer, semantics."""

from .ast import (
    Assign,
    Call,
    Compare,
    Expr,
    FieldAccess,
    Literal,
    TypeLiteral,
    Unfilled,
    Var,
    final_lookup_name,
    is_complete,
    iter_subtree,
)
from .parser import ParseError, parse
from .partial import (
    Hole,
    Ignore,
    KnownCall,
    PartialAssign,
    PartialCompare,
    PartialExpr,
    SuffixHole,
    UnknownCall,
)
from .printer import to_source
from .semantics import derivable, well_typed

__all__ = [
    "Assign",
    "Call",
    "Compare",
    "Expr",
    "FieldAccess",
    "Hole",
    "Ignore",
    "KnownCall",
    "Literal",
    "ParseError",
    "PartialAssign",
    "PartialCompare",
    "PartialExpr",
    "SuffixHole",
    "TypeLiteral",
    "Unfilled",
    "UnknownCall",
    "Var",
    "derivable",
    "final_lookup_name",
    "is_complete",
    "iter_subtree",
    "parse",
    "to_source",
    "well_typed",
]
