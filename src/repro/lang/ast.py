"""Complete-expression AST (Figure 5(a) of the paper).

The complete expression language is::

    e    ::= call | varName | e.fieldName | e := e | e < e
    call ::= methodName(e1, ..., en)

with the receiver of an instance call treated as its first argument.  Two
extra node kinds appear in our model:

* :class:`Unfilled` — the ``0`` subexpression the paper leaves in
  completions of unknown calls ("no attempt is made to fill in the extra
  argument"); it type-checks as a wildcard.
* :class:`Literal` — constants appearing in corpus code.  The engine never
  *generates* literals, but the evaluation classifies them (Fig. 14's
  "not guessable" arguments).

All nodes are immutable and structurally hashable/comparable via
:meth:`Expr.key`.
"""

from __future__ import annotations

from typing import Iterator, Optional, Tuple

from ..codemodel.members import Field, Method
from ..codemodel.types import TypeDef


class Expr:
    """Base class of all (complete and partial) expression nodes."""

    __slots__ = ()

    @property
    def type(self) -> Optional[TypeDef]:
        """The static type, or ``None`` for wildcards / partial nodes."""
        raise NotImplementedError

    def children(self) -> Tuple["Expr", ...]:
        """Immediate subexpressions."""
        return ()

    def own_dots(self) -> int:
        """Dots introduced by this node alone (Sec. 4.1's depth feature:
        dots belonging to subexpressions are counted by those nodes)."""
        return 0

    def key(self) -> tuple:
        """A structural identity tuple for hashing and equality."""
        raise NotImplementedError

    # structural equality -------------------------------------------------
    def __eq__(self, other: object) -> bool:
        return isinstance(other, Expr) and self.key() == other.key()

    def __ne__(self, other: object) -> bool:
        return not self.__eq__(other)

    def __hash__(self) -> int:
        return hash(self.key())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        from .printer import to_source

        return "<{} {}>".format(type(self).__name__, to_source(self))


def iter_subtree(expr: Expr) -> Iterator[Expr]:
    """Pre-order traversal of an expression tree."""
    yield expr
    for child in expr.children():
        yield from iter_subtree(child)


class Var(Expr):
    """A local variable, parameter, or ``this``."""

    __slots__ = ("name", "_type")

    def __init__(self, name: str, type: TypeDef) -> None:
        self.name = name
        self._type = type

    @property
    def type(self) -> TypeDef:
        return self._type

    @property
    def is_this(self) -> bool:
        return self.name == "this"

    def key(self) -> tuple:
        return ("var", self.name, self._type.full_name)


class TypeLiteral(Expr):
    """A type name used as the qualifier of a static member access.

    Not a value: ``type`` is ``None``; it only ever appears as the base of a
    :class:`FieldAccess` on a static field or as conceptual receiver text of
    a static call in the printer.
    """

    __slots__ = ("typedef",)

    def __init__(self, typedef: TypeDef) -> None:
        self.typedef = typedef

    @property
    def type(self) -> Optional[TypeDef]:
        return None

    def key(self) -> tuple:
        return ("typelit", self.typedef.full_name)


class Literal(Expr):
    """A constant, e.g. ``0``, ``"name"``, ``true``, ``null``."""

    __slots__ = ("value", "_type")

    def __init__(self, value: object, type: TypeDef) -> None:
        self.value = value
        self._type = type

    @property
    def type(self) -> TypeDef:
        return self._type

    def key(self) -> tuple:
        return ("lit", repr(self.value), self._type.full_name)


class Unfilled(Expr):
    """The ``0`` wildcard left in completions for unconstrained arguments.

    "For type checking, 0 is treated as a wildcard: as long as some choice
    of type for the 0 works, the expression is considered to type check."
    """

    __slots__ = ()

    @property
    def type(self) -> Optional[TypeDef]:
        return None

    def key(self) -> tuple:
        return ("unfilled",)


class FieldAccess(Expr):
    """``base.field`` — a field or property lookup.

    ``base`` is a :class:`TypeLiteral` for static members, otherwise a value
    expression.
    """

    __slots__ = ("base", "member")

    def __init__(self, base: Expr, member: Field) -> None:
        if member.is_static:
            assert isinstance(base, TypeLiteral), "static lookup needs a type base"
        self.base = base
        self.member = member

    @property
    def type(self) -> TypeDef:
        return self.member.type

    def children(self) -> Tuple[Expr, ...]:
        if isinstance(self.base, TypeLiteral):
            return ()
        return (self.base,)

    def own_dots(self) -> int:
        # a static lookup Type.Field costs one dot too: it is one more
        # navigation step than a bare local (matches the paper's globals
        # appearing below locals in Fig. 3)
        return 1

    def key(self) -> tuple:
        return ("field", self.base.key(), self.member.full_name)


class Call(Expr):
    """``m(e1, ..., en)`` — a method call.

    ``args`` aligns with ``method.all_params()``: for instance methods
    ``args[0]`` is the receiver; for static methods the declared parameters
    only.
    """

    __slots__ = ("method", "args")

    def __init__(self, method: Method, args: Tuple[Expr, ...]) -> None:
        expected = method.arity
        assert len(args) == expected, "call arity mismatch for {}: {} != {}".format(
            method.full_name, len(args), expected
        )
        self.method = method
        self.args: Tuple[Expr, ...] = tuple(args)

    @property
    def type(self) -> Optional[TypeDef]:
        return self.method.return_type

    @property
    def receiver(self) -> Optional[Expr]:
        if self.method.is_static:
            return None
        return self.args[0]

    def children(self) -> Tuple[Expr, ...]:
        return self.args

    def own_dots(self) -> int:
        # one dot for the `receiver.Method` step of an instance call (the
        # paper: dots("this.bar.ToBaz()") = 2, one from `this.bar`, one from
        # the call); static calls are penalised by the in-scope-static term
        # instead of by qualification dots
        return 0 if self.method.is_static else 1

    def key(self) -> tuple:
        return (
            "call",
            self.method.full_name,
            len(self.method.params),
            self.method.is_static,
            tuple(a.key() for a in self.args),
        )


class Assign(Expr):
    """``lhs := rhs``."""

    __slots__ = ("lhs", "rhs")

    def __init__(self, lhs: Expr, rhs: Expr) -> None:
        self.lhs = lhs
        self.rhs = rhs

    @property
    def type(self) -> Optional[TypeDef]:
        return self.lhs.type

    def children(self) -> Tuple[Expr, ...]:
        return (self.lhs, self.rhs)

    def key(self) -> tuple:
        return ("assign", self.lhs.key(), self.rhs.key())


#: Comparison operator spellings accepted by the language.
COMPARE_OPS = ("<", "<=", ">", ">=", "==", "!=")


class Compare(Expr):
    """``lhs op rhs`` for a relational operator."""

    __slots__ = ("lhs", "op", "rhs")

    def __init__(self, lhs: Expr, rhs: Expr, op: str = "<") -> None:
        assert op in COMPARE_OPS, "unknown comparison operator {!r}".format(op)
        self.lhs = lhs
        self.op = op
        self.rhs = rhs

    @property
    def type(self) -> Optional[TypeDef]:
        return None  # boolean; scoring never consumes a comparison's type

    def children(self) -> Tuple[Expr, ...]:
        return (self.lhs, self.rhs)

    def key(self) -> tuple:
        return ("cmp", self.op, self.lhs.key(), self.rhs.key())


def final_lookup_name(expr: Expr) -> Optional[str]:
    """The name of the last lookup of an expression, for the same-name
    ranking feature ("p.X is more likely to be compared to this.Center.X").

    Zero-argument method calls count as lookups; other expressions have no
    final lookup name.
    """
    if isinstance(expr, FieldAccess):
        return expr.member.name
    if isinstance(expr, Call) and expr.method.is_zero_arg_instance:
        return expr.method.name
    return None


def is_complete(expr: Expr) -> bool:
    """True when the tree contains no partial nodes (``Unfilled`` is a
    legal leftover in completions and counts as complete)."""
    from .partial import PartialExpr

    return all(not isinstance(node, PartialExpr) for node in iter_subtree(expr))
