"""Source frontends: read C#-subset source text into projects."""

from .csharp import SourceError, SourceReader

__all__ = ["SourceError", "SourceReader"]
