"""A C#-subset source frontend.

The paper "were unable to work on actual source code because at the time
the experiments were performed, no tools for analyzing the source code of
C# programs existed" — so it read decompiled binaries through CCI.  This
module is the missing piece: it reads a small C#-like subset directly into
the code model + corpus structures, so whole projects can be written as
plain source text (see ``examples/source_project.py``).

Supported subset::

    namespace A.B {
        enum Color { Red, Green }
        interface IShape { }
        class Rectangle : Shape, IShape {
            int Width;                      // field
            static Rectangle Empty;         // static field
            string Name { get; set; }       // property
            Rectangle(int w) { }            // constructor
            double Area() { ... }           // method with body
            static void Dump(Rectangle r);  // extern (no body)
        }
        struct Point { double X; }
    }

Bodies support local declarations with initialisers, assignments, call
statements, ``if``/``while`` conditions (flattened, as in the corpus
model), and ``return``.  Expressions are delegated to the partial
expression parser (:mod:`repro.lang.parser`), so method bodies use exactly
the expression language the engine completes.
"""

from __future__ import annotations

import re
from typing import List, Optional, Tuple

from ..analysis.scope import Context
from ..codemodel.members import Field, Method, Parameter, Property
from ..codemodel.types import TypeDef, TypeKind
from ..codemodel.typesystem import TypeSystem
from ..corpus.frameworks.system import build_system_core
from ..corpus.program import (
    AssignStatement,
    ExprStatement,
    IfStatement,
    LocalDecl,
    MethodImpl,
    Project,
    ReturnStatement,
)
from ..lang.ast import Assign, Compare, Expr
from ..lang.parser import ParseError, parse


class SourceError(ValueError):
    """Raised on any lexical/syntactic/resolution error, with a line."""

    def __init__(self, message: str, line: int) -> None:
        super().__init__("line {}: {}".format(line, message))
        self.line = line


_TOKEN_RE = re.compile(
    r"""
    (?P<comment>//[^\n]*|/\*.*?\*/)
  | (?P<ws>\s+)
  | (?P<string>"[^"\n]*")
  | (?P<number>\d+\.\d+|\d+)
  | (?P<ident>[A-Za-z_][A-Za-z0-9_]*)
  | (?P<punct>:=|<=|>=|==|!=|&&|\|\||[{}();,.<>=!?*+\-/\[\]:])
    """,
    re.VERBOSE | re.DOTALL,
)

_KEYWORD_TYPES = {
    "int", "long", "short", "byte", "char", "float", "double", "decimal",
    "bool",
}

_MODIFIERS = {
    "public", "private", "protected", "internal", "static", "virtual",
    "override", "sealed", "readonly", "abstract", "partial",
}


class _Token:
    __slots__ = ("kind", "text", "line", "start", "end")

    def __init__(self, kind: str, text: str, line: int, start: int, end: int):
        self.kind = kind
        self.text = text
        self.line = line
        self.start = start
        self.end = end

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<{} {!r} @{}>".format(self.kind, self.text, self.line)


def _tokenize(source: str) -> List[_Token]:
    tokens: List[_Token] = []
    pos = 0
    line = 1
    while pos < len(source):
        match = _TOKEN_RE.match(source, pos)
        if match is None:
            raise SourceError(
                "unexpected character {!r}".format(source[pos]), line
            )
        text = match.group()
        kind = match.lastgroup
        if kind not in ("ws", "comment"):
            tokens.append(_Token(kind, text, line, match.start(), match.end()))
        line += text.count("\n")
        pos = match.end()
    tokens.append(_Token("eof", "", line, len(source), len(source)))
    return tokens


class SourceReader:
    """Parses one or more source strings into a :class:`Project`."""

    def __init__(
        self,
        project_name: str = "source",
        ts: Optional[TypeSystem] = None,
        with_system_core: bool = True,
    ) -> None:
        self.ts = ts or TypeSystem()
        if with_system_core and self.ts.try_get("System.DateTime") is None:
            build_system_core(self.ts)
        self.project = Project(project_name, self.ts)
        #: types declared by this reader; simple-name resolution prefers
        #: them over pre-installed (BCL) types, standing in for `using`
        self._declared: List[TypeDef] = []
        #: namespaces imported with `using N;` — consulted during
        #: simple-name resolution before the unique-global fallback
        self._usings: List[str] = []
        #: (typedef, headers...) collected during the declaration pass
        self._pending_bases: List[Tuple[TypeDef, List[str], int]] = []
        self._pending_members: List[Tuple[TypeDef, List[_Token], str]] = []
        self._pending_bodies: List[
            Tuple[Method, List[Parameter], Tuple[int, int], str]
        ] = []

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def add_source(self, source: str) -> "SourceReader":
        """Declare the types of one source string (pass 1)."""
        tokens = _tokenize(source)
        self._parse_compilation_unit(tokens, source)
        return self

    def build(self) -> Project:
        """Resolve bases, members and bodies; return the project."""
        self._resolve_bases()
        self._resolve_members()
        self._parse_bodies()
        return self.project

    @classmethod
    def read(cls, source: str, project_name: str = "source") -> Project:
        """One-shot convenience for a single source string."""
        return cls(project_name).add_source(source).build()

    # ------------------------------------------------------------------
    # pass 1: type declarations
    # ------------------------------------------------------------------
    def _parse_compilation_unit(self, tokens: List[_Token], source: str) -> None:
        cursor = _Cursor(tokens, source)
        while not cursor.at("eof"):
            self._parse_namespace_or_type(cursor, namespace="")

    def _parse_namespace_or_type(self, cursor: "_Cursor", namespace: str) -> None:
        cursor.skip_modifiers()
        if cursor.accept_ident("using"):
            imported = cursor.dotted_name()
            cursor.expect(";")
            self._usings.append(imported)
            return
        if cursor.accept_ident("namespace"):
            name = cursor.dotted_name()
            full = "{}.{}".format(namespace, name) if namespace else name
            cursor.expect("{")
            while not cursor.accept("}"):
                self._parse_namespace_or_type(cursor, full)
            return
        self._parse_type_decl(cursor, namespace)

    def _parse_type_decl(self, cursor: "_Cursor", namespace: str) -> None:
        line = cursor.peek().line
        for keyword, kind in (
            ("class", TypeKind.CLASS),
            ("struct", TypeKind.STRUCT),
            ("interface", TypeKind.INTERFACE),
            ("enum", TypeKind.ENUM),
        ):
            if cursor.accept_ident(keyword):
                name = cursor.ident("a type name")
                bases: List[str] = []
                if cursor.accept(":"):
                    bases.append(cursor.dotted_name())
                    while cursor.accept(","):
                        bases.append(cursor.dotted_name())
                typedef = TypeDef(
                    name,
                    namespace,
                    kind=kind,
                    comparable=(kind is TypeKind.ENUM),
                )
                if kind is TypeKind.STRUCT:
                    typedef.base = self.ts.value_type
                elif kind is TypeKind.ENUM:
                    typedef.base = self.ts.enum_type
                self.ts.register(typedef)
                self._declared.append(typedef)
                if bases:
                    self._pending_bases.append((typedef, bases, line))
                cursor.expect("{")
                if kind is TypeKind.ENUM:
                    self._parse_enum_values(cursor, typedef)
                else:
                    self._collect_members(cursor, typedef)
                return
        raise SourceError(
            "expected a type declaration, found {!r}".format(cursor.peek().text),
            line,
        )

    def _parse_enum_values(self, cursor: "_Cursor", typedef: TypeDef) -> None:
        while not cursor.accept("}"):
            value = cursor.ident("an enum value")
            typedef.add_field(Field(value, typedef, is_static=True))
            if not cursor.accept(","):
                cursor.expect("}")
                return

    def _collect_members(self, cursor: "_Cursor", typedef: TypeDef) -> None:
        """Record each member's header tokens; bodies are captured as source
        spans for the later passes."""
        while not cursor.accept("}"):
            header: List[_Token] = []
            while cursor.peek().text not in (";", "{", "("):
                if cursor.at("eof"):
                    raise SourceError("unterminated type body",
                                      cursor.peek().line)
                header.append(cursor.next())
            if cursor.peek().text == "(":
                # method or constructor: consume the parameter list into the
                # header, then a body or ';'
                header.append(cursor.next())  # '('
                depth = 1
                while depth:
                    token = cursor.next()
                    if token.text == "(":
                        depth += 1
                    elif token.text == ")":
                        depth -= 1
                    header.append(token)
                if cursor.accept(";"):
                    self._pending_members.append((typedef, header, ""))
                    continue
                cursor.expect("{")
                span = cursor.capture_block()
                self._pending_members.append(
                    (typedef, header, cursor.source[span[0]:span[1]])
                )
            elif cursor.accept(";"):
                self._pending_members.append((typedef, header, None))
            else:
                # property: `{ get; set; }` style block after the name
                cursor.expect("{")
                cursor.capture_block()
                self._pending_members.append((typedef, header, "prop"))

    # ------------------------------------------------------------------
    # pass 2: bases and members
    # ------------------------------------------------------------------
    def _resolve_bases(self) -> None:
        for typedef, bases, line in self._pending_bases:
            for base_name in bases:
                base = self._resolve_type(base_name, typedef.namespace, line)
                if base.kind is TypeKind.INTERFACE:
                    typedef.interfaces = typedef.interfaces + (base,)
                else:
                    typedef.base = base

    def _resolve_type(
        self, name: str, namespace: str, line: int
    ) -> TypeDef:
        if name in _KEYWORD_TYPES:
            return self.ts.primitive(name)
        if name == "string":
            return self.ts.string_type
        if name == "object":
            return self.ts.object_type
        # qualified, then sibling-in-namespace, then unique simple name
        direct = self.ts.try_get(name)
        if direct is not None:
            return direct
        if namespace:
            parts = namespace.split(".")
            for end in range(len(parts), 0, -1):
                scoped = self.ts.try_get(
                    ".".join(parts[:end]) + "." + name
                )
                if scoped is not None:
                    return scoped
        for imported in self._usings:
            scoped = self.ts.try_get("{}.{}".format(imported, name))
            if scoped is not None:
                return scoped
        matches = [t for t in self.ts.all_types() if t.name == name]
        if len(matches) > 1:
            declared = [t for t in matches if t in self._declared]
            if len(declared) == 1:
                return declared[0]
        if len(matches) == 1:
            return matches[0]
        raise SourceError(
            "unknown type {!r}".format(name)
            if not matches
            else "ambiguous type {!r}".format(name),
            line,
        )

    def _resolve_members(self) -> None:
        for typedef, header, body in self._pending_members:
            self._declare_member(typedef, header, body)

    def _declare_member(
        self, typedef: TypeDef, header: List[_Token], body: Optional[str]
    ) -> None:
        if not header:
            raise SourceError("empty member declaration", 0)
        line = header[0].line
        cursor = 0
        static = False
        while header[cursor].text in _MODIFIERS:
            if header[cursor].text == "static":
                static = True
            cursor += 1

        if "(" in [t.text for t in header]:
            self._declare_method(typedef, header[cursor:], body, static, line)
            return
        # field or property: Type Name
        type_name, cursor2 = self._read_type_name(header, cursor, line)
        if cursor2 >= len(header):
            raise SourceError("expected a member name", line)
        member_name = header[cursor2].text
        member_type = self._resolve_type(type_name, typedef.namespace, line)
        if body == "prop":
            typedef.add_property(Property(member_name, member_type,
                                          is_static=static))
        else:
            typedef.add_field(Field(member_name, member_type,
                                    is_static=static))

    def _read_type_name(
        self, header: List[_Token], cursor: int, line: int
    ) -> Tuple[str, int]:
        if cursor >= len(header):
            raise SourceError("expected a type name", line)
        parts = [header[cursor].text]
        cursor += 1
        while (
            cursor + 1 < len(header)
            and header[cursor].text == "."
            and header[cursor + 1].kind == "ident"
        ):
            parts.append(header[cursor + 1].text)
            cursor += 2
        return ".".join(parts), cursor

    def _declare_method(
        self,
        typedef: TypeDef,
        header: List[_Token],
        body: Optional[str],
        static: bool,
        line: int,
    ) -> None:
        paren = next(i for i, t in enumerate(header) if t.text == "(")
        before = header[:paren]
        if len(before) == 1 and before[0].text == typedef.name:
            # constructor
            returns: Optional[TypeDef] = typedef
            name = typedef.name
            is_ctor = True
            static = True
        else:
            type_name, cursor = self._read_type_name(before, 0, line)
            if cursor >= len(before):
                raise SourceError("expected a method name", line)
            name = before[cursor].text
            returns = (
                None
                if type_name == "void"
                else self._resolve_type(type_name, typedef.namespace, line)
            )
            is_ctor = False
        params = self._parse_params(typedef, header[paren + 1:-1], line)
        method = Method(
            name,
            returns,
            params=tuple(params),
            is_static=static,
            is_constructor=is_ctor,
        )
        typedef.add_method(method)
        if body:
            self._pending_bodies.append(
                (method, params, (0, 0), body)
            )

    def _parse_params(
        self, typedef: TypeDef, tokens: List[_Token], line: int
    ) -> List[Parameter]:
        params: List[Parameter] = []
        groups: List[List[_Token]] = [[]]
        for token in tokens:
            if token.text == ",":
                groups.append([])
            else:
                groups[-1].append(token)
        for group in groups:
            if not group:
                continue
            type_name, cursor = self._read_type_name(group, 0, line)
            if cursor >= len(group):
                raise SourceError("expected a parameter name", line)
            params.append(
                Parameter(
                    group[cursor].text,
                    self._resolve_type(type_name, typedef.namespace, line),
                )
            )
        return params

    # ------------------------------------------------------------------
    # pass 3: bodies
    # ------------------------------------------------------------------
    def _parse_bodies(self) -> None:
        for method, _params, _span, body in self._pending_bodies:
            impl = self._parse_body(method, body)
            if impl is not None:
                self.project.add_impl(impl)

    def _parse_body(self, method: Method, body: str) -> Optional[MethodImpl]:
        impl = MethodImpl(method)
        context = impl.context(self.ts)
        parser = _BodyParser(self, impl, context)
        parser.run(body)
        if not impl.body:
            return None
        return impl


class _BodyParser:
    """Splits a body into statements and delegates expressions to the
    partial-expression parser."""

    def __init__(self, reader: SourceReader, impl: MethodImpl,
                 context: Context) -> None:
        self.reader = reader
        self.impl = impl
        self.context = context

    def run(self, body: str) -> None:
        tokens = _tokenize(body)
        cursor = _Cursor(tokens, body)
        while not cursor.at("eof"):
            self._statement(cursor)

    def _statement(self, cursor: "_Cursor") -> None:
        token = cursor.peek()
        if token.text == "{":
            cursor.next()
            return  # nested blocks are flattened
        if token.text == "}":
            cursor.next()
            return
        if token.kind == "ident" and token.text in ("if", "while"):
            cursor.next()
            cursor.expect("(")
            span = cursor.capture_parens()
            condition = self._parse_expr(cursor.source[span[0]:span[1]],
                                         token.line)
            if isinstance(condition, Compare):
                self.impl.body.append(IfStatement(condition))
            return
        if token.kind == "ident" and token.text == "return":
            cursor.next()
            if cursor.accept(";"):
                return
            span = cursor.capture_until_semicolon()
            expr = self._parse_expr(cursor.source[span[0]:span[1]], token.line)
            self.impl.body.append(ReturnStatement(expr))
            return
        if token.kind == "ident" and token.text == "else":
            cursor.next()
            return
        # declaration? `Type name = ...;` or `Type name;`
        if self._try_declaration(cursor):
            return
        span = cursor.capture_until_semicolon()
        text = cursor.source[span[0]:span[1]]
        expr = self._parse_expr(text, token.line)
        if isinstance(expr, Assign):
            self.impl.body.append(AssignStatement(expr))
        else:
            self.impl.body.append(ExprStatement(expr))

    def _try_declaration(self, cursor: "_Cursor") -> bool:
        """``Type name = expr;`` — detected by a resolvable type name
        followed by an identifier.  ``var name = expr;`` infers the type
        from the initialiser (the C# feature the paper leans on when
        discussing unknown result types)."""
        mark = cursor.index
        token = cursor.peek()
        if token.kind != "ident":
            return False
        if (
            token.text == "var"
            and cursor.peek(1).kind == "ident"
            and cursor.peek(2).text == "="
        ):
            cursor.next()
            name = cursor.next().text
            cursor.next()  # '='
            span = cursor.capture_until_semicolon()
            init = self._parse_expr(cursor.source[span[0]:span[1]], token.line)
            inferred = init.type
            if inferred is None:
                raise SourceError(
                    "cannot infer a type for 'var {}'".format(name), token.line
                )
            self.context.locals[name] = inferred
            self.impl.body.append(LocalDecl(name, inferred, init))
            return True
        try:
            parts = [cursor.next().text]
            while cursor.peek().text == "." and cursor.peek(1).kind == "ident":
                cursor.next()
                parts.append(cursor.next().text)
            if cursor.peek().kind != "ident":
                raise LookupError
            type_name = ".".join(parts)
            typedef = self.reader._resolve_type(type_name, "", token.line)
        except (LookupError, SourceError):
            cursor.index = mark
            return False
        name = cursor.next().text
        # record only in the parsing context; the LocalDecl statement is the
        # durable record, so statement-scoped contexts stay accurate
        self.context.locals[name] = typedef
        if cursor.accept(";"):
            self.impl.body.append(LocalDecl(name, typedef))
            return True
        cursor.expect("=")
        span = cursor.capture_until_semicolon()
        init = self._parse_expr(cursor.source[span[0]:span[1]], token.line)
        self.impl.body.append(LocalDecl(name, typedef, init))
        return True

    def _parse_expr(self, text: str, line: int) -> Expr:
        text = text.strip()
        if text.startswith("!"):
            text = text[1:]  # `if (!Directory.Exists(x))` — negation dropped
        try:
            expr = parse(text, self.context)
        except ParseError as error:
            raise SourceError(str(error), line)
        from ..lang.ast import is_complete
        from ..lang.semantics import well_typed

        if is_complete(expr) and not well_typed(expr, self.reader.ts):
            raise SourceError(
                "expression does not type-check: {!r}".format(text), line
            )
        return expr


class _Cursor:
    """Token cursor with span capture helpers."""

    def __init__(self, tokens: List[_Token], source: str) -> None:
        self.tokens = tokens
        self.source = source
        self.index = 0

    def peek(self, ahead: int = 0) -> _Token:
        return self.tokens[min(self.index + ahead, len(self.tokens) - 1)]

    def next(self) -> _Token:
        token = self.tokens[self.index]
        if token.kind != "eof":
            self.index += 1
        return token

    def at(self, kind: str) -> bool:
        return self.peek().kind == kind

    def accept(self, text: str) -> bool:
        if self.peek().text == text and self.peek().kind != "eof":
            self.index += 1
            return True
        return False

    def accept_ident(self, word: str) -> bool:
        token = self.peek()
        if token.kind == "ident" and token.text == word:
            self.index += 1
            return True
        return False

    def expect(self, text: str) -> _Token:
        token = self.peek()
        if token.text != text or token.kind == "eof":
            raise SourceError(
                "expected {!r}, found {!r}".format(text, token.text),
                token.line,
            )
        return self.next()

    def ident(self, what: str) -> str:
        token = self.peek()
        if token.kind != "ident":
            raise SourceError(
                "expected {}, found {!r}".format(what, token.text), token.line
            )
        return self.next().text

    def dotted_name(self) -> str:
        parts = [self.ident("a name")]
        while self.peek().text == "." and self.peek(1).kind == "ident":
            self.next()
            parts.append(self.next().text)
        return ".".join(parts)

    def skip_modifiers(self) -> None:
        while self.peek().kind == "ident" and self.peek().text in _MODIFIERS:
            self.index += 1

    def capture_block(self) -> Tuple[int, int]:
        """Capture from after an already-consumed '{' to its matching '}'.
        Returns the source span between the braces."""
        start = self.peek().start
        depth = 1
        end = start
        while depth:
            token = self.next()
            if token.kind == "eof":
                raise SourceError("unterminated block", token.line)
            if token.text == "{":
                depth += 1
            elif token.text == "}":
                depth -= 1
                end = token.start
        return start, end

    def capture_parens(self) -> Tuple[int, int]:
        """Capture from after an already-consumed '(' to its matching ')'."""
        start = self.peek().start
        depth = 1
        end = start
        while depth:
            token = self.next()
            if token.kind == "eof":
                raise SourceError("unterminated parenthesis", token.line)
            if token.text == "(":
                depth += 1
            elif token.text == ")":
                depth -= 1
                end = token.start
        return start, end

    def capture_until_semicolon(self) -> Tuple[int, int]:
        start = self.peek().start
        end = start
        depth = 0
        while True:
            token = self.next()
            if token.kind == "eof":
                raise SourceError("missing ';'", token.line)
            if token.text in "({":
                depth += 1
            elif token.text in ")}":
                depth -= 1
            elif token.text == ";" and depth == 0:
                return start, token.start
            end = token.end
