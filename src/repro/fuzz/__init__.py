"""Rank-stability fuzzing: semantic-preserving universe metamorphosis.

The paper's central claim is that the ranked completion set is a
function of the *semantics* of the universe — the type structure — and
not of incidental encoding choices: identifier spellings, declaration
order, namespace layout.  This package tests that invariance:

* :mod:`repro.fuzz.transforms` — seeded, composable semantic-preserving
  universe transformations, each shipping a :class:`NameMapping` for
  back-translation;
* :mod:`repro.fuzz.oracles` — differential oracles comparing base vs.
  transformed completions at score-group granularity (tie order among
  equal scores is deliberately unspecified), including prefix-consistency
  under budget truncation, the chaos-mode "degraded, never silently
  wrong" contract, and the warm-cache-vs-cold-engine mutation contract;
* :mod:`repro.fuzz.harness` — the seeded, fully deterministic iteration
  loop behind ``repro fuzz`` / ``:fuzz`` / :func:`repro.api.fuzz`;
* :mod:`repro.fuzz.shrink` — counterexample shrinking and replayable
  repro files (``repro fuzz --replay``).

See ``docs/FUZZING.md``.
"""

from .transforms import (
    FAMILIES,
    NameMapping,
    apply_transforms,
    transform_names,
)
from .oracles import Mismatch, compare_outcomes, score_groups, to_base_source
from .harness import FuzzConfig, FuzzReport, run_fuzz
from .shrink import load_repro, replay_repro, save_repro, shrink_scenario

__all__ = [
    "FAMILIES",
    "FuzzConfig",
    "FuzzReport",
    "Mismatch",
    "NameMapping",
    "apply_transforms",
    "compare_outcomes",
    "load_repro",
    "replay_repro",
    "run_fuzz",
    "save_repro",
    "score_groups",
    "shrink_scenario",
    "to_base_source",
    "transform_names",
]
