"""Counterexample shrinking and replayable repro files.

A failing scenario is pure data, so shrinking is classic delta
debugging: greedily drop transformation steps while the failure
persists, then isolate a single failing query, then try dropping steps
again (a shorter query list can unlock further transform drops).  The
result is a minimal ``(transformation sequence, query)`` pair.

Repro files are the same scenario dicts, written with ``sort_keys`` so
they are byte-stable, under ``{"format": "repro-fuzz-repro"}``.  Replay
(``repro fuzz --replay FILE``) re-runs the scenario from scratch: exit
1 when the failure still reproduces, 0 when it no longer does.
"""

from __future__ import annotations

import copy
import json
from typing import Any, Callable, Dict, Optional

REPRO_FORMAT = "repro-fuzz-repro"
REPRO_VERSION = 1

#: a scenario runner: scenario dict -> failure message or None
Runner = Callable[[Dict[str, Any]], Optional[str]]


def _fails(scenario: Dict[str, Any], runner: Runner) -> bool:
    return runner(scenario) is not None


def _drop_transforms(scenario: Dict[str, Any], runner: Runner) -> Dict[str, Any]:
    """Greedy drop-one over the transformation plan, to a fixpoint."""
    current = scenario
    changed = True
    while changed and len(current["transforms"]) > 1:
        changed = False
        for index in range(len(current["transforms"])):
            candidate = copy.deepcopy(current)
            del candidate["transforms"][index]
            if _fails(candidate, runner):
                current = candidate
                changed = True
                break
    return current


def _isolate_query(scenario: Dict[str, Any], runner: Runner) -> Dict[str, Any]:
    """Reduce the query list to a single failing query when one exists.

    The oracles run queries in order and raise at the first mismatch, so
    a single-query culprit usually exists; when the failure only shows
    with the full list (e.g. a cache-interaction bug needs the priming
    queries), the list is kept."""
    if len(scenario["queries"]) <= 1:
        return scenario
    for query in scenario["queries"]:
        candidate = copy.deepcopy(scenario)
        candidate["queries"] = [query]
        if _fails(candidate, runner):
            return candidate
    return scenario


def shrink_scenario(scenario: Dict[str, Any], runner: Runner) -> Dict[str, Any]:
    """Minimize a failing scenario to a minimal transformation sequence
    plus (usually) a single query.  ``runner`` is the pure scenario
    executor (:func:`repro.fuzz.harness.run_scenario`); the input
    scenario is not modified.

    If the scenario does not fail under ``runner`` (a flaky failure
    would violate the harness's determinism guarantee), it is returned
    unshrunk rather than minimized against the wrong predicate.
    """
    if not _fails(scenario, runner):
        return copy.deepcopy(scenario)
    current = _drop_transforms(copy.deepcopy(scenario), runner)
    current = _isolate_query(current, runner)
    current = _drop_transforms(current, runner)
    failure = runner(current)
    shrunk = copy.deepcopy(current)
    shrunk["failure"] = failure
    shrunk["shrunk"] = True
    return shrunk


# ----------------------------------------------------------------------
# repro files
# ----------------------------------------------------------------------

def save_repro(path: str, scenario: Dict[str, Any]) -> None:
    """Write a scenario as a byte-stable, replayable repro file."""
    document = dict(scenario)
    document["format"] = REPRO_FORMAT
    document["version"] = REPRO_VERSION
    with open(path, "w") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")


def load_repro(path: str) -> Dict[str, Any]:
    """Load and validate a repro file written by :func:`save_repro`."""
    with open(path) as handle:
        document = json.load(handle)
    if not isinstance(document, dict) or document.get("format") != REPRO_FORMAT:
        raise ValueError(
            "{}: not a {} file".format(path, REPRO_FORMAT))
    if document.get("version") != REPRO_VERSION:
        raise ValueError(
            "{}: unsupported repro version {!r}".format(
                path, document.get("version")))
    for key in ("universe", "mode", "transforms", "queries", "locals", "n"):
        if key not in document:
            raise ValueError("{}: repro file missing {!r}".format(path, key))
    return document


def replay_repro(
    path: str, write: Optional[Callable[[str], None]] = None
) -> Optional[str]:
    """Re-run a repro file's scenario from scratch.

    Returns the failure message when the counterexample still
    reproduces, ``None`` when the scenario now passes (the bug it
    witnessed is fixed).
    """
    from .harness import run_scenario

    scenario = load_repro(path)
    emit = write or (lambda _line: None)
    emit("replaying {}: universe {!r}, mode {!r}, {} transform step(s), "
         "{} query(ies)".format(
             path, scenario["universe"], scenario["mode"],
             len(scenario["transforms"]), len(scenario["queries"])))
    failure = run_scenario(scenario)
    if failure is None:
        emit("scenario passes: counterexample no longer reproduces")
    else:
        emit("counterexample reproduces:")
        emit(failure)
    return failure
