"""The seeded fuzzing loop behind ``repro fuzz``.

Every iteration is a *scenario*: a universe, a transformation plan, a
query list, a mode, and (per mode) a step budget, a fault spec, or a
mutation seed.  Scenarios are pure data (JSON-ready dicts) so a failing
one can be shrunk and written to a replayable repro file
(:mod:`repro.fuzz.shrink`).

Determinism is load-bearing: iteration ``i`` of seed ``s`` derives all
its choices from ``random.Random("fuzz:s:i")`` (string seeding is
stable across runs and platforms), records carry no wall-clock fields,
and budgets are step budgets only — a deadline would make truncation
points timing-dependent.  Two runs with the same seed therefore produce
byte-identical iteration records.

Modes:

``differential``
    Base vs. transformed universe, no budget: full score-group equality
    through the name mapping.
``budget``
    Same comparison under a ``QueryBudget`` step cap: prefix
    consistency only (the two sides may trip at different depths).
``chaos``
    Clean vs. fault-injected runs of the transformed universe: a fault
    may degrade or truncate the outcome but never silently change the
    ranking (requires ``FuzzConfig.chaos``).
``mutation``
    In-place ``TypeDef`` mutations against a warm ``CompletionCache``,
    differentially checked against a cold engine — the tested form of
    the cache's clear-on-mutation contract.
"""

from __future__ import annotations

import json
import os
import random
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..codemodel.members import Field
from ..engine.budget import QueryBudget
from ..engine.completer import CompletionEngine, EngineConfig
from ..ide.workspace import Workspace
from ..lang.parser import ParseError, parse
from ..serialize import dump_type_system, load_type_system
from ..testing import faults
from .oracles import (
    Mismatch,
    check_chaos_outcome,
    check_mutation_outcomes,
    compare_outcomes,
)
from .transforms import NameMapping, apply_transforms, transform_names

#: scenario modes in scheduling order (chaos joins when enabled)
MODES = ("differential", "budget", "mutation")

#: step budgets the budget mode draws from (never deadlines: wall-clock
#: truncation points would break record determinism)
_STEP_BUDGETS = (40, 120, 400)

#: query shapes the synthesiser draws from; ``{x}``/``{y}`` are local
#: names from the battery scope
_QUERY_SHAPES = (
    "?",
    "{x}.?f",
    "{x}.?m",
    "{x}.?*f",
    "{x}.?*m",
    "{x} := ?",
    "?({{{x}}})",
    "?({{{x}, {y}}})",
)


@dataclass
class FuzzConfig:
    """Knobs of one ``repro fuzz`` run."""

    seed: int = 0
    iterations: int = 20
    chaos: bool = False
    #: transformation families to draw from (None = all)
    transforms: Optional[List[str]] = None
    universes: Tuple[str, ...] = ("paint", "geometry", "bcl")
    n: int = 10
    #: directory minimized repro files are written to
    out_dir: str = "."

    def families(self) -> List[str]:
        if self.transforms is None:
            return transform_names()
        known = set(transform_names())
        for family in self.transforms:
            if family not in known:
                raise ValueError(
                    "unknown transform family {!r}; known families: "
                    "{}".format(family, ", ".join(transform_names())))
        return list(self.transforms)

    def modes(self) -> Tuple[str, ...]:
        return MODES + ("chaos",) if self.chaos else MODES


@dataclass
class FuzzReport:
    """The outcome of one run: deterministic per-iteration records plus
    the (shrunk) counterexample, if any."""

    seed: int
    iterations: int
    records: List[Dict[str, Any]] = field(default_factory=list)
    counterexample: Optional[Dict[str, Any]] = None
    failure: Optional[str] = None
    repro_path: Optional[str] = None

    @property
    def failed(self) -> bool:
        return self.counterexample is not None

    def to_dict(self) -> Dict[str, Any]:
        return {
            "format": "repro-fuzz",
            "version": 1,
            "seed": self.seed,
            "iterations": self.iterations,
            "records": self.records,
            "counterexample": self.counterexample,
            "failure": self.failure,
        }


# ----------------------------------------------------------------------
# base universes
# ----------------------------------------------------------------------

_battery_scopes: Dict[str, Dict[str, Any]] = {}
_base_docs: Dict[str, Dict[str, Any]] = {}


def _battery_scope(universe: str) -> Dict[str, Any]:
    """The pinned battery's scope and queries for a builtin universe."""
    cached = _battery_scopes.get(universe)
    if cached is None:
        from ..eval.battery import battery_for

        battery = battery_for(universe)
        cached = {
            "locals": dict(battery.locals),
            "this": battery.this_type,
            "queries": list(battery.queries),
        }
        _battery_scopes[universe] = cached
    return cached


def base_universe_doc(universe: str) -> Dict[str, Any]:
    """The serialised base universe (memoised per process: the builtin
    builders are deterministic, so the document is too)."""
    cached = _base_docs.get(universe)
    if cached is None:
        cached = dump_type_system(Workspace.builtin(universe).ts)
        _base_docs[universe] = cached
    return cached


# ----------------------------------------------------------------------
# scenario synthesis
# ----------------------------------------------------------------------

def synthesize_scenario(config: FuzzConfig, iteration: int) -> Dict[str, Any]:
    """Derive iteration ``iteration``'s scenario, fully determined by
    ``(config.seed, iteration)``."""
    rng = random.Random("fuzz:{}:{}".format(config.seed, iteration))
    universe = rng.choice(list(config.universes))
    modes = config.modes()
    mode = modes[iteration % len(modes)]
    families = config.families()
    count = rng.randint(1, min(3, len(families)))
    plan = [
        [family, rng.randrange(2 ** 32)]
        for family in rng.sample(families, count)
    ]
    scope = _battery_scope(universe)
    local_names = sorted(scope["locals"])
    queries = list(scope["queries"])
    for _ in range(2):
        shape = rng.choice(_QUERY_SHAPES)
        x = rng.choice(local_names)
        y = rng.choice([name for name in local_names if name != x] or [x])
        queries.append(shape.format(x=x, y=y))
    scenario: Dict[str, Any] = {
        "format": "repro-fuzz-repro",
        "version": 1,
        "seed": config.seed,
        "iteration": iteration,
        "universe": universe,
        "mode": mode,
        "transforms": plan,
        "queries": queries,
        "locals": dict(scope["locals"]),
        "this": scope["this"],
        "n": config.n,
        "budget_steps": None,
        "fault": None,
        "mutation_seed": None,
    }
    if mode == "budget":
        scenario["budget_steps"] = rng.choice(_STEP_BUDGETS)
    elif mode == "chaos":
        scenario["fault"] = {
            "site": rng.choice(list(faults.QUERY_SITES)),
            "on_call": rng.randint(1, 12),
            "times": rng.choice([1, 2, 3, None]),
        }
    elif mode == "mutation":
        scenario["mutation_seed"] = rng.randrange(2 ** 32)
    return scenario


# ----------------------------------------------------------------------
# scenario execution
# ----------------------------------------------------------------------

def _workspace_for(
    doc: Dict[str, Any], name: str, cache_enabled: Optional[bool] = None
) -> Workspace:
    ts = load_type_system(doc)
    config = None
    if cache_enabled is not None:
        config = EngineConfig(enable_cache=cache_enabled)
    return Workspace(ts, name=name, config=config)


def _context_for(
    workspace: Workspace,
    locals_map: Dict[str, str],
    this_name: Optional[str],
    mapping: NameMapping,
):
    resolved = {
        name: workspace.ts.get(mapping.map_type(type_name))
        for name, type_name in sorted(locals_map.items())
    }
    this_type = (
        workspace.ts.get(mapping.map_type(this_name)) if this_name else None
    )
    return workspace.context(locals=resolved, this_type=this_type)


def _run_query(
    workspace: Workspace,
    context,
    source: str,
    n: int,
    budget_steps: Optional[int] = None,
):
    pe = parse(source, context)
    budget = (
        QueryBudget(max_steps=budget_steps)
        if budget_steps is not None else None
    )
    return workspace.engine.complete_query(pe, context, n=n, budget=budget)


def run_scenario(scenario: Dict[str, Any]) -> Optional[str]:
    """Execute one scenario; ``None`` on success, else a failure
    description (the counterexample's evidence)."""
    base_doc = base_universe_doc(scenario["universe"])
    plan = [tuple(step) for step in scenario["transforms"]]
    transformed_doc, mapping = apply_transforms(base_doc, plan)
    mode = scenario["mode"]
    n = scenario["n"]
    try:
        if mode in ("differential", "budget"):
            return _run_differential(scenario, base_doc, transformed_doc,
                                     mapping, n)
        if mode == "chaos":
            return _run_chaos(scenario, transformed_doc, mapping, n)
        if mode == "mutation":
            return _run_mutation(scenario, transformed_doc, mapping, n)
        raise ValueError("unknown fuzz mode {!r}".format(mode))
    except Mismatch as mismatch:
        return str(mismatch)
    except ParseError as error:
        return "query failed to parse: {}".format(error)


def _run_differential(
    scenario: Dict[str, Any],
    base_doc: Dict[str, Any],
    transformed_doc: Dict[str, Any],
    mapping: NameMapping,
    n: int,
) -> Optional[str]:
    identity = NameMapping.identity()
    base_ws = _workspace_for(base_doc, scenario["universe"])
    trans_ws = _workspace_for(
        transformed_doc, scenario["universe"] + "-transformed")
    base_ctx = _context_for(
        base_ws, scenario["locals"], scenario["this"], identity)
    trans_ctx = _context_for(
        trans_ws, scenario["locals"], scenario["this"], mapping)
    budget_steps = scenario.get("budget_steps")
    for source in scenario["queries"]:
        base_outcome = _run_query(base_ws, base_ctx, source, n, budget_steps)
        trans_outcome = _run_query(
            trans_ws, trans_ctx, source, n, budget_steps)
        try:
            compare_outcomes(base_outcome, trans_outcome, mapping, n,
                             prefix_only=budget_steps is not None)
        except Mismatch as mismatch:
            raise Mismatch("query {!r}: {}".format(source, mismatch))
    return None


def _run_chaos(
    scenario: Dict[str, Any],
    transformed_doc: Dict[str, Any],
    mapping: NameMapping,
    n: int,
) -> Optional[str]:
    workspace = _workspace_for(
        transformed_doc, scenario["universe"] + "-transformed")
    context = _context_for(
        workspace, scenario["locals"], scenario["this"], mapping)
    spec = scenario["fault"]
    for source in scenario["queries"]:
        clean = _run_query(workspace, context, source, n)
        plan = faults.FaultPlan().add(
            spec["site"], on_call=spec["on_call"], times=spec["times"])
        previous = faults.active_plan()
        faults.install(plan)
        try:
            faulted = _run_query(workspace, context, source, n)
        except faults.FaultError as escaped:
            raise Mismatch(
                "query {!r}: injected fault at {!r} escaped the engine: "
                "{}".format(source, spec["site"], escaped))
        finally:
            if previous is None:
                faults.uninstall()
            else:
                faults.install(previous)
        try:
            check_chaos_outcome(clean, faulted, n)
        except Mismatch as mismatch:
            raise Mismatch("query {!r} under fault {}: {}".format(
                source, spec, mismatch))
    return None


def _mutate_in_place(ts, rng: random.Random) -> List[str]:
    """Apply 1-3 in-place ``TypeDef`` mutations (member reorders and
    member additions — the mutation oracle compares warm vs. cold over
    the *same* mutated universe, so the mutations need not preserve
    semantics).  Returns human-readable descriptions."""
    builtin = {"System.Object", "System.ValueType", "System.Enum",
               "System.String", "void"}
    candidates = [
        t for t in ts.all_types()
        if t.full_name not in builtin and t.kind.value != "primitive"
        and (t.fields or t.properties or t.methods)
    ]
    if not candidates:
        return []
    applied: List[str] = []
    for _ in range(rng.randint(1, 3)):
        target = rng.choice(candidates)
        if rng.random() < 0.5:
            target.set_member_order(
                fields=rng.sample(target.fields, len(target.fields)),
                properties=rng.sample(
                    target.properties, len(target.properties)),
                methods=rng.sample(target.methods, len(target.methods)),
            )
            applied.append("reorder {}".format(target.full_name))
        else:
            name = "zzFuzzMutant{}".format(rng.randrange(10000))
            target.add_field(Field(name, ts.string_type))
            applied.append("add field {}.{}".format(target.full_name, name))
    return applied


def _run_mutation(
    scenario: Dict[str, Any],
    transformed_doc: Dict[str, Any],
    mapping: NameMapping,
    n: int,
) -> Optional[str]:
    warm_ws = _workspace_for(
        transformed_doc, scenario["universe"] + "-warm", cache_enabled=True)
    context = _context_for(
        warm_ws, scenario["locals"], scenario["this"], mapping)
    # prime the warm engine and its cross-query cache on the pre-mutation
    # universe, then mutate in place under it
    for source in scenario["queries"]:
        _run_query(warm_ws, context, source, n)
    version_before = warm_ws.ts.version
    rng = random.Random(
        "fuzz-mutation:{}".format(scenario["mutation_seed"]))
    applied = _mutate_in_place(warm_ws.ts, rng)
    if applied and warm_ws.ts.version == version_before:
        raise Mismatch(
            "in-place mutations ({}) did not bump the TypeSystem version "
            "— caches can serve stale answers".format("; ".join(applied)))
    # a cold, cache-less engine over the *same* mutated type system is
    # ground truth for the warm engine's post-mutation answers
    cold_engine = CompletionEngine(
        warm_ws.ts, EngineConfig(enable_cache=False))
    for source in scenario["queries"]:
        warm_outcome = _run_query(warm_ws, context, source, n)
        pe = parse(source, context)
        cold_outcome = cold_engine.complete_query(pe, context, n=n)
        try:
            check_mutation_outcomes(warm_outcome, cold_outcome, n)
        except Mismatch as mismatch:
            raise Mismatch(
                "query {!r} after mutations ({}): {}".format(
                    source, "; ".join(applied) or "none", mismatch))
    return None


# ----------------------------------------------------------------------
# the loop
# ----------------------------------------------------------------------

def run_fuzz(
    config: FuzzConfig,
    write: Optional[Callable[[str], None]] = None,
    run_log=None,
) -> FuzzReport:
    """Run the fuzzing loop; stops (after shrinking and writing a repro
    file) at the first counterexample.

    With ``run_log`` attached, the manifest records the seed and every
    iteration lands as an ``event`` record whose ``data`` is exactly the
    deterministic iteration record.
    """
    from .shrink import save_repro, shrink_scenario

    emit = write or (lambda _line: None)
    report = FuzzReport(seed=config.seed, iterations=config.iterations)
    if run_log is not None:
        run_log.annotate(seed=config.seed)
    for iteration in range(config.iterations):
        scenario = synthesize_scenario(config, iteration)
        failure = run_scenario(scenario)
        record = {
            "iteration": iteration,
            "universe": scenario["universe"],
            "mode": scenario["mode"],
            "transforms": scenario["transforms"],
            "queries": scenario["queries"],
            "budget_steps": scenario["budget_steps"],
            "fault": scenario["fault"],
            "mutation_seed": scenario["mutation_seed"],
            "result": "fail" if failure else "ok",
        }
        report.records.append(record)
        if run_log is not None:
            run_log.event("fuzz_iteration", **record)
        if failure is None:
            continue
        emit("iteration {}: FAIL ({} / {}) — shrinking...".format(
            iteration, scenario["universe"], scenario["mode"]))
        shrunk = shrink_scenario(scenario, run_scenario)
        final_failure = run_scenario(shrunk) or failure
        report.counterexample = shrunk
        report.failure = final_failure
        path = os.path.join(
            config.out_dir,
            "FUZZ_REPRO_seed{}_iter{}.json".format(config.seed, iteration))
        save_repro(path, shrunk)
        report.repro_path = path
        if run_log is not None:
            run_log.event("fuzz_counterexample",
                          iteration=iteration, repro=path,
                          failure=final_failure)
        emit("counterexample written to {}".format(path))
        emit(final_failure)
        break
    return report


def render_report(report: FuzzReport) -> List[str]:
    """Human-readable summary lines (the CLI output)."""
    lines = ["fuzz seed {}: {} iteration(s)".format(
        report.seed, len(report.records))]
    by_mode: Dict[str, int] = {}
    for record in report.records:
        by_mode[record["mode"]] = by_mode.get(record["mode"], 0) + 1
    if by_mode:
        lines.append("  modes: " + ", ".join(
            "{} x{}".format(mode, count)
            for mode, count in sorted(by_mode.items())))
    if report.failed:
        lines.append("  counterexample at iteration {} ({}): see {}"
                     .format(report.counterexample["iteration"],
                             report.counterexample["mode"],
                             report.repro_path))
        lines.append("  " + (report.failure or ""))
    else:
        lines.append("  all iterations passed (rank-stable)")
    return lines


def records_ndjson(report: FuzzReport) -> str:
    """The deterministic iteration records as NDJSON — the byte-stable
    artifact two same-seed runs must agree on."""
    return "\n".join(
        json.dumps(record, sort_keys=True) for record in report.records
    ) + "\n"
