"""Differential oracles for rank stability.

The comparison granularity is the *score group*: the engine's best-first
streams guarantee nondecreasing scores, and the repo deliberately leaves
the order among equal-score completions unspecified (it follows
registration/member order, which the transformations perturb on
purpose).  Two runs agree when:

* their score sequences agree group by group,
* every *complete* group holds the same set of back-translated
  completion texts, and
* the *boundary* group — the one a top-``n`` cut or a tripped budget may
  have truncated mid-group — agrees on score and size only (which tied
  members survive the cut is exactly the unspecified tie order).

Under budget truncation the two sides may stop at different points, so
the oracle checks *prefix consistency*: every group that is complete on
both sides must agree; the tail beyond the shorter side is not judged.

The chaos oracle pins the resilience contract: with faults injected
mid-query, a run may degrade (``QueryOutcome.degraded`` non-empty) or
truncate — but if its completions differ from the clean run's, it must
*say so* through one of those two channels.  A silently wrong ranking is
the failure the whole harness exists to catch.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Tuple

from ..lang.ast import (
    Assign,
    Call,
    Compare,
    Expr,
    FieldAccess,
    Literal,
    TypeLiteral,
    Unfilled,
    Var,
)
from ..lang.printer import _literal_text
from .transforms import NameMapping


class Mismatch(Exception):
    """A differential oracle failure (the counterexample payload)."""


# ----------------------------------------------------------------------
# back-translation: transformed-universe expression -> base-universe text
# ----------------------------------------------------------------------

def to_base_source(expr: Expr, mapping: NameMapping) -> str:
    """Render a completion from the transformed universe in base-universe
    spelling, mirroring :func:`repro.lang.printer.to_source` shape for
    shape (local names are shared between the two universes; type and
    member names go through the mapping's reverse direction)."""
    unmap_type = mapping.unmap_type
    unmap_member = mapping.unmap_member

    def render(node: Expr) -> str:
        if isinstance(node, Var):
            return node.name
        if isinstance(node, TypeLiteral):
            return unmap_type(node.typedef.full_name)
        if isinstance(node, Literal):
            return _literal_text(node)
        if isinstance(node, Unfilled):
            return "0"
        if isinstance(node, FieldAccess):
            return "{}.{}".format(
                render(node.base), unmap_member(node.member.name))
        if isinstance(node, Call):
            method = node.method
            if method.is_constructor:
                args = ", ".join(render(a) for a in node.args)
                return "new {}({})".format(
                    unmap_type(method.declaring_type.full_name), args)
            if method.is_static or isinstance(node.args[0], Unfilled):
                args = ", ".join(render(a) for a in node.args)
                return "{}.{}({})".format(
                    unmap_type(method.declaring_type.full_name),
                    unmap_member(method.name), args)
            receiver = render(node.args[0])
            args = ", ".join(render(a) for a in node.args[1:])
            return "{}.{}({})".format(
                receiver, unmap_member(method.name), args)
        if isinstance(node, Assign):
            return "{} := {}".format(render(node.lhs), render(node.rhs))
        if isinstance(node, Compare):
            return "{} {} {}".format(
                render(node.lhs), node.op, render(node.rhs))
        raise TypeError(
            "cannot back-translate {!r}".format(type(node).__name__))

    return render(expr)


# ----------------------------------------------------------------------
# score groups
# ----------------------------------------------------------------------

def score_groups(
    completions: Sequence,
    render: Optional[Callable[[Expr], str]] = None,
) -> List[Tuple[int, List[str]]]:
    """Group a ranked completion list by score, in stream order.

    Raises :class:`Mismatch` when the scores are not nondecreasing —
    that is a stream-invariant violation worth reporting on its own.
    """
    from ..lang.printer import to_source

    text = render or to_source
    groups: List[Tuple[int, List[str]]] = []
    previous: Optional[int] = None
    for completion in completions:
        score = completion.score
        if previous is not None and score < previous:
            raise Mismatch(
                "scores not nondecreasing: {} after {}".format(
                    score, previous))
        if previous == score:
            groups[-1][1].append(text(completion.expr))
        else:
            groups.append((score, [text(completion.expr)]))
        previous = score
    return groups


def _describe(groups: List[Tuple[int, List[str]]]) -> str:
    return "; ".join(
        "score {}: [{}]".format(score, ", ".join(sorted(texts)))
        for score, texts in groups
    )


def compare_outcomes(
    base_outcome,
    transformed_outcome,
    mapping: NameMapping,
    n: int,
    prefix_only: bool = False,
) -> None:
    """Assert rank invariance between a base and a transformed run.

    ``prefix_only`` is the budget-truncation mode: the two sides may
    have stopped at different depths, so only the groups complete on
    both sides are compared.  Raises :class:`Mismatch` on disagreement.
    """
    base_groups = score_groups(base_outcome.completions)
    trans_groups = score_groups(
        transformed_outcome.completions,
        render=lambda expr: to_base_source(expr, mapping),
    )

    if prefix_only:
        # a best-first stream's groups are complete except the last one
        # emitted before the cut; judge only the shared complete prefix
        comparable = min(len(base_groups), len(trans_groups)) - 1
        if comparable <= 0:
            return
        _compare_groups(
            base_groups[:comparable], trans_groups[:comparable],
            boundary=None)
        return

    if len(base_outcome.completions) != len(transformed_outcome.completions):
        raise Mismatch(
            "completion counts differ: base {} vs transformed {}\n"
            "base: {}\ntransformed: {}".format(
                len(base_outcome.completions),
                len(transformed_outcome.completions),
                _describe(base_groups), _describe(trans_groups)))
    # the final group is the boundary group only when the top-n cut can
    # have split it (list is full); an exhausted stream's last group is
    # complete and must match exactly
    cut = len(base_outcome.completions) == n
    _compare_groups(base_groups, trans_groups,
                    boundary=(len(base_groups) - 1 if cut else None))


def _compare_groups(
    base_groups: List[Tuple[int, List[str]]],
    trans_groups: List[Tuple[int, List[str]]],
    boundary: Optional[int],
) -> None:
    if len(base_groups) != len(trans_groups):
        raise Mismatch(
            "score-group counts differ\nbase: {}\ntransformed: {}".format(
                _describe(base_groups), _describe(trans_groups)))
    for index, ((base_score, base_texts), (trans_score, trans_texts)) in (
            enumerate(zip(base_groups, trans_groups))):
        if base_score != trans_score:
            raise Mismatch(
                "group {} score differs: base {} vs transformed {}\n"
                "base: {}\ntransformed: {}".format(
                    index, base_score, trans_score,
                    _describe(base_groups), _describe(trans_groups)))
        if len(base_texts) != len(trans_texts):
            raise Mismatch(
                "group {} (score {}) size differs: {} vs {}\n"
                "base: {}\ntransformed: {}".format(
                    index, base_score, len(base_texts), len(trans_texts),
                    _describe(base_groups), _describe(trans_groups)))
        if index == boundary:
            continue  # cut group: tie order decides the survivors
        if sorted(base_texts) != sorted(trans_texts):
            raise Mismatch(
                "group {} (score {}) members differ\n"
                "base: [{}]\ntransformed: [{}]".format(
                    index, base_score,
                    ", ".join(sorted(base_texts)),
                    ", ".join(sorted(trans_texts))))


def check_chaos_outcome(clean_outcome, faulted_outcome, n: int) -> None:
    """The chaos contract: a faulted run whose ranking differs from the
    clean run must be *marked* — degraded features recorded or a
    truncated status — never silently wrong.

    Both runs come from the same (transformed) universe, so texts
    compare directly (identity mapping).
    """
    identity = NameMapping.identity()
    try:
        compare_outcomes(clean_outcome, faulted_outcome, identity, n)
    except Mismatch as difference:
        if faulted_outcome.degraded or faulted_outcome.status.is_truncated:
            return  # differs, and says so: the contract holds
        raise Mismatch(
            "silently wrong under fault injection: results differ from "
            "the clean run but the outcome reports no degradation and no "
            "truncation\n{}".format(difference))


def check_mutation_outcomes(warm_outcome, cold_outcome, n: int) -> None:
    """The clear-on-mutation contract: after an in-place ``TypeDef``
    mutation, a warm cached engine must answer exactly like a cold
    cache-less engine over the mutated universe."""
    identity = NameMapping.identity()
    try:
        compare_outcomes(warm_outcome, cold_outcome, identity, n)
    except Mismatch as difference:
        raise Mismatch(
            "warm cached engine diverged from cold engine after an "
            "in-place mutation (stale cache?)\n{}".format(difference))
