"""Semantic-preserving universe transformations.

Each transformation family rewrites the *serialised* form of a universe
(the ``repro-universe`` document of :func:`repro.serialize.dump_type_system`)
and ships a :class:`NameMapping` so completions computed against the
transformed universe can be translated back to base-universe spelling.
"Semantic-preserving" means: for every query, the transformed universe
must produce the same multiset of (score, back-translated completion)
pairs — the Figure-7 score of every candidate is untouched.

That pins down what each family may do:

``rename_types``
    Fresh simple names for non-builtin types.  Type spelling feeds no
    ranking term (``TypeSystem.join`` tie-breaks on ``full_name`` but
    both winners cost the same), so renames are free once collisions are
    avoided.
``rename_members``
    A *global bijection* over member-name strings.  The matching-name
    term compares the final lookup names of two comparison sides for
    string equality, so the map must preserve the equality relation:
    same name maps to same name, distinct names stay distinct.
    Constructors are skipped (they print as ``new Type(...)``).
``permute_namespaces``
    Renames namespace *segments* consistently (same segment path, same
    new name).  The namespace term scores the length of the common
    prefix of namespace paths, which a consistent segment renaming
    preserves — except at the frozen ``System`` root: the builtin types
    (``System.String``, ...) are not part of the document, so renaming
    the leading ``System`` of framework namespaces would silently change
    their prefix commonality with builtins.  The root segment
    ``System`` is therefore never renamed.
``reorder_members``
    Shuffles each type's declared member lists.  Inherited-member
    resolution dedups by first-seen key ((name) for lookups,
    (name, arity) for methods), so items sharing a dedup key keep their
    relative order — otherwise a reorder could swap which overload
    survives, which is a *semantic* change.
``shuffle_interfaces``
    Permutes a type's ``interfaces`` tuple.  The supertype *graph* is
    order-free, but the deterministic MRO walks interfaces in tuple
    order, so the permutation is applied only when the interfaces'
    transitive closures are pairwise disjoint (in reachable types and in
    member dedup keys) — then no first-seen winner can change.
``split_types``
    Adds fresh, empty, unreferenced subclass shells.  Leaf types with no
    members are invisible to completion (no statics, no instance
    members, no generated constructors) and adding a leaf never changes
    distances between existing types, so this is the no-op "type split"
    of the abstract-type partition: every existing name maps to itself.

Every family is deterministic in its integer seed; fresh names are drawn
from the family's own ``random.Random`` stream, never from global state.
"""

from __future__ import annotations

import copy
import random
from typing import Any, Callable, Dict, List, Optional, Sequence, Set, Tuple

#: builtin roots whose shared position in every MRO makes them exempt
#: from the interface-shuffle disjointness check (see _closures)
_ROOTS = ("System.Object", "System.ValueType", "System.Enum")

#: the frozen namespace root: builtins live directly under ``System`` and
#: are absent from the document, so the segment must keep its spelling
_FROZEN_NAMESPACE_ROOT = "System"


class NameMapping:
    """Base-universe names -> transformed-universe names, invertible.

    ``types`` maps full type names, ``members`` maps member-name strings
    (a global bijection), ``namespaces`` maps dotted namespace strings.
    Unmapped names are their own image, so the identity mapping is three
    empty dicts.
    """

    def __init__(
        self,
        types: Optional[Dict[str, str]] = None,
        members: Optional[Dict[str, str]] = None,
        namespaces: Optional[Dict[str, str]] = None,
    ) -> None:
        self.types = dict(types or {})
        self.members = dict(members or {})
        self.namespaces = dict(namespaces or {})
        self._rev_types = {new: old for old, new in self.types.items()}
        self._rev_members = {new: old for old, new in self.members.items()}

    # -- forward (base -> transformed) ---------------------------------
    def map_type(self, full_name: str) -> str:
        return self.types.get(full_name, full_name)

    def map_member(self, name: str) -> str:
        return self.members.get(name, name)

    # -- backward (transformed -> base) --------------------------------
    def unmap_type(self, full_name: str) -> str:
        return self._rev_types.get(full_name, full_name)

    def unmap_member(self, name: str) -> str:
        return self._rev_members.get(name, name)

    def compose(self, later: "NameMapping") -> "NameMapping":
        """The mapping applying ``self`` first, then ``later``."""
        types = {old: later.map_type(new) for old, new in self.types.items()}
        for old, new in later.types.items():
            if old not in self._rev_types and old not in types:
                types[old] = new
        members = {
            old: later.map_member(new) for old, new in self.members.items()
        }
        for old, new in later.members.items():
            if old not in self._rev_members and old not in members:
                members[old] = new
        namespaces = {
            old: later.namespaces.get(new, new)
            for old, new in self.namespaces.items()
        }
        for old, new in later.namespaces.items():
            if old not in namespaces and old not in set(
                self.namespaces.values()
            ):
                namespaces[old] = new
        return NameMapping(types, members, namespaces)

    @classmethod
    def identity(cls) -> "NameMapping":
        return cls()


# ----------------------------------------------------------------------
# document helpers
# ----------------------------------------------------------------------

def _entries(doc: Dict[str, Any]) -> List[Dict[str, Any]]:
    return doc["types"]


def _renameable(entry: Dict[str, Any]) -> bool:
    """Non-builtin entries own their identity; ``members_only`` entries
    attach members to frozen builtins."""
    return not entry["members_only"]


def _all_full_names(doc: Dict[str, Any]) -> Set[str]:
    names = {entry["full_name"] for entry in _entries(doc)}
    names.update(_ROOTS)
    names.update({"System.String", "void"})
    return names


def _rewrite_doc(doc: Dict[str, Any], mapping: NameMapping) -> Dict[str, Any]:
    """Apply a name mapping to every reference inside a document."""

    def t(name: Optional[str]) -> Optional[str]:
        return None if name is None else mapping.map_type(name)

    out = copy.deepcopy(doc)
    for entry in _entries(out):
        if _renameable(entry):
            entry["full_name"] = mapping.map_type(entry["full_name"])
            entry["base"] = t(entry["base"])
            entry["interfaces"] = [t(i) for i in entry["interfaces"]]
        for member in entry.get("fields", []) + entry.get("properties", []):
            member["name"] = mapping.map_member(member["name"])
            member["type"] = t(member["type"])
        for method in entry.get("methods", []):
            if not method["constructor"]:
                method["name"] = mapping.map_member(method["name"])
            method["returns"] = (
                method["returns"]
                if method["returns"] == "__void__"
                else t(method["returns"])
            )
            method["params"] = [
                [pname, t(ptype)] for pname, ptype in method["params"]
            ]
            if method["overrides"]:
                declaring, name, param_types, static = method["overrides"]
                method["overrides"] = [
                    t(declaring),
                    mapping.map_member(name),
                    [t(p) for p in param_types],
                    static,
                ]
    return out


def _fresh_name(base: str, rng: random.Random, used: Set[str]) -> str:
    """A deterministic fresh identifier derived from ``base``."""
    while True:
        candidate = "{}X{:04d}".format(base, rng.randrange(10000))
        if candidate not in used:
            used.add(candidate)
            return candidate


# ----------------------------------------------------------------------
# families
# ----------------------------------------------------------------------

def _rename_types(
    doc: Dict[str, Any], rng: random.Random
) -> Tuple[Dict[str, Any], NameMapping]:
    used = _all_full_names(doc)
    used_simple = {e["full_name"].rpartition(".")[2] for e in _entries(doc)}
    types: Dict[str, str] = {}
    for entry in _entries(doc):
        if not _renameable(entry):
            continue
        full = entry["full_name"]
        namespace, _, simple = full.rpartition(".")
        new_simple = _fresh_name(simple, rng, used_simple)
        new_full = "{}.{}".format(namespace, new_simple) if namespace else new_simple
        if new_full in used:
            continue
        used.add(new_full)
        types[full] = new_full
    mapping = NameMapping(types=types)
    return _rewrite_doc(doc, mapping), mapping


def _rename_members(
    doc: Dict[str, Any], rng: random.Random
) -> Tuple[Dict[str, Any], NameMapping]:
    # collect every member-name string (constructors excluded) and build
    # a global bijection onto fresh names: the matching-name term only
    # sees string (in)equality, which a bijection preserves
    names: List[str] = []
    seen: Set[str] = set()
    for entry in _entries(doc):
        for member in entry.get("fields", []) + entry.get("properties", []):
            if member["name"] not in seen:
                seen.add(member["name"])
                names.append(member["name"])
        for method in entry.get("methods", []):
            if not method["constructor"] and method["name"] not in seen:
                seen.add(method["name"])
                names.append(method["name"])
    used: Set[str] = set(seen)
    members = {name: _fresh_name(name, rng, used) for name in names}
    mapping = NameMapping(members=members)
    return _rewrite_doc(doc, mapping), mapping


def _namespace_paths(doc: Dict[str, Any]) -> List[Tuple[str, ...]]:
    paths: Set[Tuple[str, ...]] = set()
    for entry in _entries(doc):
        if not _renameable(entry):
            continue
        namespace = entry["full_name"].rpartition(".")[0]
        if namespace:
            parts = tuple(namespace.split("."))
            for depth in range(1, len(parts) + 1):
                paths.add(parts[:depth])
    return sorted(paths)


def _permute_namespaces(
    doc: Dict[str, Any], rng: random.Random
) -> Tuple[Dict[str, Any], NameMapping]:
    # rename each namespace-trie node (a segment path) to a fresh
    # segment; the same path always gets the same new segment, so common
    # prefix lengths between any two namespaces are preserved exactly.
    # The root segment "System" is frozen: builtins (absent from the
    # document) live under it, and their prefix commonality with
    # framework namespaces must not move.
    used_segments: Set[str] = set()
    for path in _namespace_paths(doc):
        used_segments.update(path)
    segment_of: Dict[Tuple[str, ...], str] = {}
    for path in _namespace_paths(doc):
        if len(path) == 1 and path[0] == _FROZEN_NAMESPACE_ROOT:
            segment_of[path] = path[0]
        else:
            segment_of[path] = _fresh_name(path[-1], rng, used_segments)

    def rename_namespace(namespace: str) -> str:
        if not namespace:
            return namespace
        parts = tuple(namespace.split("."))
        return ".".join(
            segment_of.get(parts[: depth + 1], parts[depth])
            for depth in range(len(parts))
        )

    namespaces: Dict[str, str] = {}
    types: Dict[str, str] = {}
    for entry in _entries(doc):
        if not _renameable(entry):
            continue
        namespace, _, simple = entry["full_name"].rpartition(".")
        new_namespace = rename_namespace(namespace)
        if namespace and new_namespace != namespace:
            namespaces[namespace] = new_namespace
            types[entry["full_name"]] = "{}.{}".format(new_namespace, simple)
    mapping = NameMapping(types=types, namespaces=namespaces)
    return _rewrite_doc(doc, mapping), mapping


def _stable_shuffle(
    items: List[Any], rng: random.Random, key: Callable[[Any], Any]
) -> List[Any]:
    """Shuffle ``items`` but keep the relative order of items sharing a
    ``key`` (the inherited-member dedup key, so first-seen winners do
    not change)."""
    shuffled = list(items)
    rng.shuffle(shuffled)
    pending: Dict[Any, List[Any]] = {}
    for item in items:
        pending.setdefault(key(item), []).append(item)
    result = []
    for item in shuffled:
        result.append(pending[key(item)].pop(0))
    return result


def _reorder_members(
    doc: Dict[str, Any], rng: random.Random
) -> Tuple[Dict[str, Any], NameMapping]:
    out = copy.deepcopy(doc)
    for entry in _entries(out):
        entry["fields"] = _stable_shuffle(
            entry.get("fields", []), rng, lambda f: f["name"])
        entry["properties"] = _stable_shuffle(
            entry.get("properties", []), rng, lambda p: p["name"])
        entry["methods"] = _stable_shuffle(
            entry.get("methods", []), rng,
            lambda m: (m["name"], len(m["params"]), m["constructor"]))
    return out, NameMapping.identity()


def _closures(
    doc: Dict[str, Any],
) -> Tuple[Dict[str, Set[str]], Dict[str, Set[Tuple]]]:
    """Per type: reachable supertypes and their member dedup keys,
    following base/interface edges inside the document (the shared
    builtin roots are excluded — their MRO position is base-block-stable
    under an interface permutation)."""
    by_name = {entry["full_name"]: entry for entry in _entries(doc)}
    type_closure: Dict[str, Set[str]] = {}
    key_closure: Dict[str, Set[Tuple]] = {}

    def visit(name: str) -> Tuple[Set[str], Set[Tuple]]:
        if name in type_closure:
            return type_closure[name], key_closure[name]
        types: Set[str] = set()
        keys: Set[Tuple] = set()
        type_closure[name] = types  # breaks cycles defensively
        key_closure[name] = keys
        entry = by_name.get(name)
        if entry is None or name in _ROOTS:
            return types, keys
        types.add(name)
        for member in entry.get("fields", []) + entry.get("properties", []):
            keys.add(("lookup", member["name"]))
        for method in entry.get("methods", []):
            if not method["constructor"]:
                keys.add(("method", method["name"], len(method["params"])))
        parents = list(entry.get("interfaces", []))
        if entry.get("base"):
            parents.append(entry["base"])
        for parent in parents:
            parent_types, parent_keys = visit(parent)
            types |= parent_types
            keys |= parent_keys
        return types, keys

    for entry in _entries(doc):
        visit(entry["full_name"])
    return type_closure, key_closure


def _roots_have_members(doc: Dict[str, Any]) -> bool:
    for entry in _entries(doc):
        if entry["full_name"] in _ROOTS and (
            entry.get("fields") or entry.get("properties")
            or entry.get("methods")
        ):
            return True
    return False


def _shuffle_interfaces(
    doc: Dict[str, Any], rng: random.Random
) -> Tuple[Dict[str, Any], NameMapping]:
    out = copy.deepcopy(doc)
    if _roots_have_members(out):
        # members on the shared roots would make the disjointness check
        # below unsound; no builtin universe does this, but stay safe
        return out, NameMapping.identity()
    type_closure, key_closure = _closures(out)
    for entry in _entries(out):
        interfaces = entry.get("interfaces") or []
        if len(interfaces) < 2:
            continue
        safe = True
        for i, left in enumerate(interfaces):
            for right in interfaces[i + 1:]:
                if type_closure.get(left, set()) & type_closure.get(
                    right, set()
                ) or key_closure.get(left, set()) & key_closure.get(
                    right, set()
                ):
                    safe = False
        if safe:
            permuted = list(interfaces)
            rng.shuffle(permuted)
            entry["interfaces"] = permuted
    return out, NameMapping.identity()


def _split_types(
    doc: Dict[str, Any], rng: random.Random
) -> Tuple[Dict[str, Any], NameMapping]:
    out = copy.deepcopy(doc)
    used = _all_full_names(out)
    candidates = [
        entry for entry in _entries(out)
        if _renameable(entry) and entry["kind"] == "class"
    ]
    if not candidates:
        return out, NameMapping.identity()
    count = min(len(candidates), 1 + rng.randrange(3))
    for entry in rng.sample(candidates, count):
        namespace, _, simple = entry["full_name"].rpartition(".")
        shell_simple = _fresh_name(simple + "Split", rng, set())
        shell_full = (
            "{}.{}".format(namespace, shell_simple) if namespace
            else shell_simple
        )
        if shell_full in used:
            continue
        used.add(shell_full)
        out["types"].append({
            "full_name": shell_full,
            "members_only": False,
            "kind": "class",
            "base": entry["full_name"],
            "interfaces": [],
            "comparable": False,
            "treat_as_primitive": False,
            "fields": [],
            "properties": [],
            "methods": [],
        })
    return out, NameMapping.identity()


#: family name -> transformation function, in canonical order
FAMILIES: Dict[str, Callable[[Dict[str, Any], random.Random],
                             Tuple[Dict[str, Any], NameMapping]]] = {
    "rename_types": _rename_types,
    "rename_members": _rename_members,
    "permute_namespaces": _permute_namespaces,
    "reorder_members": _reorder_members,
    "shuffle_interfaces": _shuffle_interfaces,
    "split_types": _split_types,
}


def transform_names() -> List[str]:
    """The canonical family names, in application order."""
    return list(FAMILIES)


def apply_transforms(
    doc: Dict[str, Any], plan: Sequence[Tuple[str, int]]
) -> Tuple[Dict[str, Any], NameMapping]:
    """Apply ``plan`` — ``(family, seed)`` pairs — left to right.

    Returns the transformed document and the *composed* mapping from
    base-universe names to final names.  Unknown family names raise
    ``ValueError`` (the canonical list is :func:`transform_names`).
    """
    mapping = NameMapping.identity()
    current = doc
    for family, seed in plan:
        if family not in FAMILIES:
            raise ValueError(
                "unknown transform family {!r}; known families: {}".format(
                    family, ", ".join(FAMILIES)))
        rng = random.Random("fuzz-transform:{}:{}".format(family, seed))
        current, step = FAMILIES[family](current, rng)
        mapping = mapping.compose(step)
    return current, mapping
