"""The completion service's wire protocol: JSON shapes and error codes.

One place defines what goes over the wire so the server, the client,
the load generator, and the protocol tests all agree byte for byte.
Requests and responses are JSON bodies over HTTP/1.1; every error is a
structured body — never a hung connection, never a bare status line:

    {"error": {"code": "shed", "message": "...", "exit_code": 2}}

``code`` values are stable (callers may switch on them), and each maps
to one HTTP status and one exit-style code through the **canonical
error table** in :mod:`repro.errors` (0 ok, 1 parse error, 2
usage/admission, 3 deadline truncation, 4 step-budget truncation) — the
CLI consumes the same table, so a service client sees the same status
space a CLI user does.  See docs/SERVING.md.
"""

from __future__ import annotations

import uuid
from typing import Any, Dict, List, Optional

from ..errors import ERROR_TABLE, TRUNCATION_EXIT

#: protocol version reported by ``/v1/healthz``; bump on breaking shape
#: changes (additive fields don't count)
PROTOCOL_VERSION = 1

# ----------------------------------------------------------------------
# stable error codes -> (HTTP status, exit-style code)
# ----------------------------------------------------------------------

#: malformed request: bad JSON, missing/mistyped fields, bad scope types
BAD_REQUEST = "bad_request"
#: the named workspace is not served by this process
UNKNOWN_WORKSPACE = "unknown_workspace"
#: no route for the path/method
NOT_FOUND = "not_found"
METHOD_NOT_ALLOWED = "method_not_allowed"
#: the query text did not parse
PARSE_ERROR = "parse_error"
#: admission control refused the request: the tenant's queue would
#: already blow the deadline (the 429-style shed)
SHED = "shed"
#: the deadline expired while the request waited in the queue (the
#: 504-style shed — admitted, but never reached the engine in time)
DEADLINE_EXCEEDED = "deadline_exceeded"
#: unexpected server-side failure
INTERNAL = "internal_error"

#: the canonical code -> (http_status, exit_code) table, owned by
#: :mod:`repro.errors` (this name is the protocol's historical alias
#: for it — same dict object, kept importable)
ERROR_CODES: Dict[str, tuple] = ERROR_TABLE

#: QueryStatus truncation reason -> exit-style code (a truncated query
#: still answers 200 with best-so-far results, like the CLI prints them)
_TRUNCATION_EXIT = TRUNCATION_EXIT


#: clients may supply their own correlation id; cap it so a run-log
#: record can't be ballooned by a hostile body
MAX_REQUEST_ID_LEN = 128


def new_request_id() -> str:
    """A fresh server-generated correlation id (16 hex chars)."""
    return uuid.uuid4().hex[:16]


def error_body(code: str, message: str) -> Dict[str, Any]:
    """The structured error payload for a stable ``code``."""
    status, exit_code = ERROR_CODES[code]
    return {
        "error": {"code": code, "message": message, "exit_code": exit_code},
        "status": status,
    }


def http_status(code: str) -> int:
    return ERROR_CODES[code][0]


# ----------------------------------------------------------------------
# result serialisation
# ----------------------------------------------------------------------

def suggestion_to_dict(suggestion: Any) -> Dict[str, Any]:
    """One ranked result line; the exact shape the byte-identity tests
    compare against in-process :func:`repro.api.complete` output."""
    return {
        "rank": suggestion.rank,
        "score": suggestion.score,
        "text": suggestion.text,
    }


def record_to_dict(record: Any, include_timing: bool = True) -> Dict[str, Any]:
    """Serialise a :class:`~repro.ide.session.QueryRecord`.

    ``include_timing=False`` drops the wall-clock fields, leaving only
    deterministic content — what the differential tests compare.
    """
    body: Dict[str, Any] = {
        "query": record.source,
        "suggestions": [suggestion_to_dict(s) for s in record.suggestions],
        "status": record.status.value if record.status is not None else None,
        "cached": record.cached,
        "steps": record.steps,
        "degraded": sorted(record.degraded),
        "truncated": record.truncated,
        "exit_code": _TRUNCATION_EXIT.get(record.truncated, 0),
    }
    if record.error is not None:
        body["parse_error"] = record.error
        body["exit_code"] = 1
    if include_timing:
        body["elapsed_ms"] = record.elapsed_ms
    return body


def completion_to_dict(completion: Any) -> Dict[str, Any]:
    """One explained completion: score, source text, and the ranking
    breakdown whose terms sum exactly to the score."""
    from ..lang.printer import to_source

    breakdown = completion.breakdown
    return {
        "score": completion.score,
        "text": to_source(completion.expr),
        "breakdown": {
            "rows": [[feature, value] for feature, value in breakdown.rows()],
            "cached": breakdown.cached,
        },
    }


# ----------------------------------------------------------------------
# request parsing
# ----------------------------------------------------------------------

class ProtocolError(ValueError):
    """A malformed request body, carrying the stable error code."""

    def __init__(self, code: str, message: str) -> None:
        super().__init__(message)
        self.code = code


def _require_str(body: Dict[str, Any], key: str) -> str:
    value = body.get(key)
    if not isinstance(value, str) or not value:
        raise ProtocolError(
            BAD_REQUEST, "{!r} must be a non-empty string".format(key))
    return value


class CompletionRequestBody:
    """A parsed ``/v1/complete`` / ``/v1/complete_many`` / ``/v1/explain``
    body: the tenant workspace, the queries, and the session scope."""

    __slots__ = ("workspace", "queries", "locals", "this", "expected",
                 "keyword", "n", "deadline_ms", "max_steps", "rank",
                 "request_id", "trace", "fault_events")

    def __init__(self, body: Any, many: bool = False) -> None:
        if not isinstance(body, dict):
            raise ProtocolError(BAD_REQUEST, "request body must be a JSON "
                                             "object")
        self.workspace = _require_str(body, "workspace")
        if many:
            queries = body.get("queries")
            if (not isinstance(queries, list) or not queries
                    or not all(isinstance(q, str) for q in queries)):
                raise ProtocolError(
                    BAD_REQUEST, "'queries' must be a non-empty list of "
                                 "strings")
            self.queries: List[str] = list(queries)
        else:
            self.queries = [_require_str(body, "query")]
        locals_map = body.get("locals", {})
        if not isinstance(locals_map, dict) or not all(
            isinstance(k, str) and isinstance(v, str)
            for k, v in locals_map.items()
        ):
            raise ProtocolError(
                BAD_REQUEST, "'locals' must map names to type names")
        self.locals: Dict[str, str] = dict(locals_map)
        for key in ("this", "expected", "keyword"):
            value = body.get(key)
            if value is not None and not isinstance(value, str):
                raise ProtocolError(
                    BAD_REQUEST, "{!r} must be a string".format(key))
            setattr(self, key, value)
        n = body.get("n", 10)
        if not isinstance(n, int) or isinstance(n, bool) or n <= 0:
            raise ProtocolError(BAD_REQUEST, "'n' must be a positive integer")
        self.n = n
        deadline = body.get("deadline_ms")
        if deadline is not None and (
            not isinstance(deadline, (int, float)) or isinstance(deadline, bool)
            or deadline <= 0
        ):
            raise ProtocolError(
                BAD_REQUEST, "'deadline_ms' must be a positive number")
        self.deadline_ms: Optional[float] = (
            float(deadline) if deadline is not None else None)
        max_steps = body.get("max_steps")
        if max_steps is not None and (
            not isinstance(max_steps, int) or isinstance(max_steps, bool)
            or max_steps <= 0
        ):
            raise ProtocolError(
                BAD_REQUEST, "'max_steps' must be a positive integer")
        self.max_steps: Optional[int] = max_steps
        rank = body.get("rank")
        if rank is not None and (
            not isinstance(rank, int) or isinstance(rank, bool) or rank <= 0
        ):
            raise ProtocolError(
                BAD_REQUEST, "'rank' must be a positive integer")
        self.rank: Optional[int] = rank
        request_id = body.get("request_id")
        if request_id is not None and (
            not isinstance(request_id, str) or not request_id
            or len(request_id) > MAX_REQUEST_ID_LEN
        ):
            raise ProtocolError(
                BAD_REQUEST,
                "'request_id' must be a non-empty string of at most "
                "{} characters".format(MAX_REQUEST_ID_LEN))
        #: the correlation id; the server fills in a generated one when
        #: the client did not supply its own
        self.request_id: Optional[str] = request_id
        trace = body.get("trace", False)
        if not isinstance(trace, bool):
            raise ProtocolError(BAD_REQUEST, "'trace' must be a boolean")
        #: opt-in per-request span tracing (embedded in the run log and,
        #: for a traced single /v1/complete, echoed in the response)
        self.trace = trace
        #: ``"site@call"`` strings for faults the chaos layer triggered
        #: while this request ran; filled by the tenant, read by the
        #: server when it writes the ``server_request`` record
        self.fault_events: List[str] = []
