"""Clients for the completion service: one sync, one async.

:class:`ServeClient` wraps a persistent ``http.client`` connection —
what the load generator's worker threads and the tests use.  The
``async_request`` coroutine speaks the same protocol over raw asyncio
streams, for callers already inside an event loop (the concurrency
battery's "N async clients" scenario).  Both return ``(http_status,
decoded_json_body)`` and never raise on protocol-level errors — a shed
or a parse failure is a structured body, not an exception
(docs/SERVING.md).
"""

from __future__ import annotations

import asyncio
import http.client
import json
from typing import Any, Dict, Optional, Tuple
from urllib.parse import urlsplit

Response = Tuple[int, Dict[str, Any]]


class ServeClient:
    """A synchronous client over one keep-alive connection."""

    def __init__(self, url: str, timeout: float = 60.0) -> None:
        split = urlsplit(url)
        if split.scheme != "http" or split.hostname is None:
            raise ValueError("expected an http://host:port URL, "
                             "got {!r}".format(url))
        self.host = split.hostname
        self.port = split.port or 80
        self.timeout = timeout
        self._connection: Optional[http.client.HTTPConnection] = None

    def _connect(self) -> http.client.HTTPConnection:
        if self._connection is None:
            self._connection = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout)
        return self._connection

    def close(self) -> None:
        if self._connection is not None:
            self._connection.close()
            self._connection = None

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    def request(self, method: str, path: str,
                body: Optional[dict] = None) -> Response:
        """One request; reconnects once on a dropped keep-alive."""
        payload = (json.dumps(body).encode() if body is not None else None)
        headers = {"Content-Type": "application/json"} if payload else {}
        for attempt in (0, 1):
            connection = self._connect()
            try:
                connection.request(method, path, body=payload,
                                   headers=headers)
                response = connection.getresponse()
                text = response.read().decode()
                return response.status, json.loads(text)
            except (http.client.HTTPException, ConnectionError, OSError):
                self.close()
                if attempt:
                    raise
        raise AssertionError("unreachable")  # pragma: no cover

    def request_text(self, method: str, path: str) -> Tuple[int, str]:
        """Like :meth:`request` but returns the raw body text — for
        endpoints that do not speak JSON (``/v1/metrics``)."""
        for attempt in (0, 1):
            connection = self._connect()
            try:
                connection.request(method, path)
                response = connection.getresponse()
                return response.status, response.read().decode("utf-8")
            except (http.client.HTTPException, ConnectionError, OSError):
                self.close()
                if attempt:
                    raise
        raise AssertionError("unreachable")  # pragma: no cover

    # ------------------------------------------------------------------
    # endpoint helpers
    # ------------------------------------------------------------------
    def healthz(self) -> Response:
        return self.request("GET", "/v1/healthz")

    def metrics(self) -> Tuple[int, str]:
        """The Prometheus exposition scrape."""
        return self.request_text("GET", "/v1/metrics")

    def stats(self, workspace: Optional[str] = None) -> Response:
        path = "/v1/stats"
        if workspace is not None:
            path += "?workspace={}".format(workspace)
        return self.request("GET", path)

    def complete(self, workspace: str, query: str, **fields: Any) -> Response:
        body = {"workspace": workspace, "query": query}
        body.update(fields)
        return self.request("POST", "/v1/complete", body)

    def complete_many(self, workspace: str, queries, **fields: Any) -> Response:
        body = {"workspace": workspace, "queries": list(queries)}
        body.update(fields)
        return self.request("POST", "/v1/complete_many", body)

    def explain(self, workspace: str, query: str, **fields: Any) -> Response:
        body = {"workspace": workspace, "query": query}
        body.update(fields)
        return self.request("POST", "/v1/explain", body)


async def async_request(
    url: str, method: str, path: str, body: Optional[dict] = None,
    timeout: float = 60.0,
) -> Response:
    """One request over a fresh asyncio connection (no pooling — each
    call is an independent client, which is exactly what the
    concurrency differentials want)."""
    split = urlsplit(url)
    reader, writer = await asyncio.open_connection(
        split.hostname, split.port or 80)
    try:
        payload = json.dumps(body).encode() if body is not None else b""
        head = (
            "{} {} HTTP/1.1\r\n"
            "Host: {}:{}\r\n"
            "Content-Type: application/json\r\n"
            "Content-Length: {}\r\n"
            "Connection: close\r\n"
            "\r\n"
        ).format(method, path, split.hostname, split.port or 80, len(payload))
        writer.write(head.encode() + payload)
        await writer.drain()
        raw = await asyncio.wait_for(reader.read(), timeout=timeout)
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except ConnectionResetError:  # pragma: no cover - teardown race
            pass
    header_blob, _, body_blob = raw.partition(b"\r\n\r\n")
    status_line = header_blob.split(b"\r\n", 1)[0].decode("latin-1")
    status = int(status_line.split(" ")[1])
    return status, json.loads(body_blob.decode())
