"""Completion-as-a-service: the asyncio HTTP/1.1 front end.

A :class:`CompletionServer` owns an :class:`~repro.serve.pool.EnginePool`
and speaks a small JSON protocol (stdlib only — raw ``asyncio`` streams,
no third-party HTTP stack):

* ``POST /v1/complete`` — one query against a named workspace;
* ``POST /v1/complete_many`` — a batch sharing one scope;
* ``POST /v1/explain`` — ranking attribution;
* ``GET /v1/stats`` — per-tenant metrics / cache / run-log counters;
* ``GET /v1/healthz`` — liveness, protocol version, tenant warm state,
  SLO verdicts when objectives are configured;
* ``GET /v1/metrics`` — every registry (server-wide HTTP + per-tenant
  engine) in Prometheus text exposition format.

Every query request carries a correlation ``request_id`` — client
supplied or server generated — echoed in the response, bound onto the
engine's own run-log records for the request (via
:meth:`~repro.obs.runlog.RunLog.bind` on the tenant thread), and
stamped on the ``server_request`` record together with the merged span
tree when the request opted into tracing.  See docs/OBSERVABILITY.md.

Engine work never runs on the event loop: each request is dispatched to
its tenant's single worker thread (session affinity,
:mod:`repro.serve.pool`), so the loop stays free to accept, shed, and
answer health checks even while every engine is busy.  Shutdown is
graceful by default: the listener closes first, in-flight connections
drain, then tenant threads stop and per-tenant run logs flush to disk.

``start_in_thread`` wraps the whole thing for synchronous callers (the
load generator's spawn mode, tests, ``repro.api.serve``): it runs the
event loop on a daemon thread and hands back a :class:`ServerHandle`.
"""

from __future__ import annotations

import asyncio
import json
import os
import threading
import time
from typing import Any, Dict, Iterable, List, Optional, Set, Tuple, Union
from urllib.parse import parse_qs, urlsplit

from ..obs.expo import (
    EXPOSITION_CONTENT_TYPE,
    LATENCY_BOUNDS_MS,
    render_prometheus,
)
from ..obs.metrics import Metrics
from ..obs.slo import SLOObjectives, SLOTracker
from . import protocol
from .chaos import ChaosSpec
from .pool import AdmissionError, EnginePool
from .protocol import CompletionRequestBody, ProtocolError

#: largest accepted request body; a completion request is tiny, so this
#: only guards the listener against garbage
MAX_BODY_BYTES = 1 << 20
#: socket-level grace for reading one request's head + body
READ_TIMEOUT_S = 30.0


def _merge_spans(records: Iterable[Any]) -> Optional[List[dict]]:
    """Merge per-query span trees into one request-level tree.

    Each query's tracer numbers its spans from zero, so a batch's trees
    collide; renumber every tree past the previous one's ids to keep
    parent links intact and ids unique across the request."""
    merged: List[dict] = []
    offset = 0
    for record in records:
        spans = getattr(record, "trace", None) or []
        top = offset - 1
        for span in spans:
            span = dict(span)
            span["span"] += offset
            if span.get("parent") is not None:
                span["parent"] += offset
            top = max(top, span["span"])
            merged.append(span)
        offset = top + 1
    return merged or None


class CompletionServer:
    """A long-lived, multi-tenant completion service."""

    def __init__(
        self,
        pool: Optional[EnginePool] = None,
        host: str = "127.0.0.1",
        port: int = 0,
        default_deadline_ms: Optional[float] = None,
        run_log_dir: Optional[str] = None,
        slo: Union[str, SLOObjectives, None] = None,
        fault_plan: Union[ChaosSpec, Dict[str, Any], str, None] = None,
    ) -> None:
        self.pool = pool or EnginePool()
        self.host = host
        self.port = port  # 0 until start() binds an ephemeral port
        self.default_deadline_ms = default_deadline_ms
        self.run_log_dir = run_log_dir
        #: server-wide HTTP registry (the tenants keep their own)
        self.metrics = Metrics()
        if isinstance(slo, str):
            slo = SLOObjectives.from_spec(slo)
        self.slo: Optional[SLOTracker] = (
            SLOTracker(slo) if slo else None)
        if fault_plan is not None:
            self.pool.set_chaos(fault_plan)
        self.started = time.monotonic()
        self._server: Optional[asyncio.AbstractServer] = None
        self._connections: Set[asyncio.Task] = set()
        #: connection tasks currently processing a request — the only
        #: ones a graceful drain waits for (idle keep-alive connections
        #: are cancelled, or the drain would hang on their next read)
        self._busy: Set[asyncio.Task] = set()
        self._in_flight = 0
        self._draining = False

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Warm every tenant, open per-tenant run-log streams, bind."""
        self.pool.warm_all()
        if self.run_log_dir is not None:
            os.makedirs(self.run_log_dir, exist_ok=True)
            for name, tenant in self.pool.tenants.items():
                path = os.path.join(self.run_log_dir,
                                    "serve_{}.ndjson".format(name))
                tenant.run_log.attach_stream(open(path, "w"))
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]

    @property
    def url(self) -> str:
        return "http://{}:{}".format(self.host, self.port)

    async def serve_forever(self) -> None:
        assert self._server is not None, "call start() first"
        await self._server.serve_forever()

    async def stop(self, drain: bool = True) -> None:
        """Graceful shutdown: stop accepting, let in-flight requests
        finish (``drain=True``), stop tenant threads, flush run logs."""
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        for task in set(self._connections):
            if drain and task in self._busy:
                continue
            task.cancel()
        if self._connections:
            await asyncio.gather(*set(self._connections),
                                 return_exceptions=True)
        self.pool.shutdown(drain=drain)

    # ------------------------------------------------------------------
    # HTTP plumbing
    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._connections.add(task)
        try:
            while True:
                request = await self._read_request(reader)
                if request is None:
                    break
                method, path, body, keep_alive = request
                self._in_flight += 1
                if task is not None:
                    self._busy.add(task)
                try:
                    dispatched = time.monotonic()
                    status, payload = await self._dispatch(method, path, body)
                    self.metrics.record(
                        counters={"http_requests": 1,
                                  "http_status_{}".format(status): 1},
                        observations=[(
                            "http_latency_ms",
                            (time.monotonic() - dispatched) * 1000.0,
                            LATENCY_BOUNDS_MS)],
                    )
                    await self._write_response(writer, status, payload,
                                               keep_alive)
                finally:
                    self._in_flight -= 1
                    if task is not None:
                        self._busy.discard(task)
                if not keep_alive or self._draining:
                    break
        except (asyncio.IncompleteReadError, ConnectionResetError,
                asyncio.TimeoutError):
            pass
        finally:
            if task is not None:
                self._connections.discard(task)
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> Optional[Tuple[str, str, bytes, bool]]:
        """One HTTP/1.1 request head + body; None on clean EOF."""
        try:
            head = await asyncio.wait_for(
                reader.readuntil(b"\r\n\r\n"), timeout=READ_TIMEOUT_S)
        except asyncio.IncompleteReadError as error:
            if not error.partial:
                return None
            raise
        lines = head.decode("latin-1").split("\r\n")
        parts = lines[0].split(" ")
        if len(parts) != 3:
            return None
        method, path, _version = parts
        headers: Dict[str, str] = {}
        for line in lines[1:]:
            if ":" in line:
                key, _, value = line.partition(":")
                headers[key.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0") or "0")
        if length > MAX_BODY_BYTES:
            return None
        body = b""
        if length:
            body = await asyncio.wait_for(
                reader.readexactly(length), timeout=READ_TIMEOUT_S)
        keep_alive = headers.get("connection", "keep-alive") != "close"
        return method, path, body, keep_alive

    async def _write_response(
        self, writer: asyncio.StreamWriter, status: int,
        payload: Union[dict, str], keep_alive: bool,
    ) -> None:
        if isinstance(payload, str):
            # /v1/metrics answers exposition text, everything else JSON
            body = payload.encode("utf-8")
            content_type = EXPOSITION_CONTENT_TYPE
        else:
            body = json.dumps(payload, sort_keys=True).encode()
            content_type = "application/json"
        reason = {200: "OK", 400: "Bad Request", 404: "Not Found",
                  405: "Method Not Allowed", 422: "Unprocessable Entity",
                  429: "Too Many Requests", 500: "Internal Server Error",
                  504: "Gateway Timeout"}.get(status, "OK")
        head = (
            "HTTP/1.1 {} {}\r\n"
            "Content-Type: {}\r\n"
            "Content-Length: {}\r\n"
            "Connection: {}\r\n"
            "\r\n"
        ).format(status, reason, content_type, len(body),
                 "keep-alive" if keep_alive else "close")
        writer.write(head.encode() + body)
        await writer.drain()

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------
    async def _dispatch(
        self, method: str, target: str, body: bytes
    ) -> Tuple[int, Union[dict, str]]:
        split = urlsplit(target)
        path = split.path
        if path == "/v1/healthz":
            if method != "GET":
                return self._error(protocol.METHOD_NOT_ALLOWED,
                                   "use GET for {}".format(path))
            return 200, self._healthz()
        if path == "/v1/metrics":
            if method != "GET":
                return self._error(protocol.METHOD_NOT_ALLOWED,
                                   "use GET for {}".format(path))
            return 200, self._metrics_text()
        if path == "/v1/stats":
            if method != "GET":
                return self._error(protocol.METHOD_NOT_ALLOWED,
                                   "use GET for {}".format(path))
            return self._stats(parse_qs(split.query))
        if path in ("/v1/complete", "/v1/complete_many", "/v1/explain"):
            if method != "POST":
                return self._error(protocol.METHOD_NOT_ALLOWED,
                                   "use POST for {}".format(path))
            return await self._query_endpoint(path, body)
        return self._error(protocol.NOT_FOUND,
                           "no route for {} {}".format(method, target))

    def _error(self, code: str, message: str) -> Tuple[int, dict]:
        payload = protocol.error_body(code, message)
        return payload.pop("status"), payload

    def _healthz(self) -> dict:
        document = {
            "ok": True,
            "protocol": protocol.PROTOCOL_VERSION,
            "uptime_s": round(time.monotonic() - self.started, 3),
            "in_flight": self._in_flight,
            "workspaces": {
                name: {"warmed": tenant.warmed, "pending": tenant.pending}
                for name, tenant in sorted(self.pool.tenants.items())
            },
        }
        if self.slo is not None:
            report = self.slo.evaluate()
            document["slo"] = report
            document["ok"] = bool(report["ok"])
        if self.pool.chaos_spec is not None:
            document["chaos"] = self.pool.chaos_spec.to_dict()
        return document

    def _metrics_text(self) -> str:
        """Every registry, rendered for a Prometheus scrape."""
        sections: List[Tuple[Dict[str, str], Dict[str, Any]]] = [
            ({}, self.metrics.to_dict())]
        gauges: List[Tuple[str, Dict[str, str], float]] = [
            ("server_uptime_seconds", {},
             time.monotonic() - self.started),
            ("server_in_flight", {}, float(self._in_flight)),
        ]
        for name, tenant in sorted(self.pool.tenants.items()):
            labels = {"workspace": name}
            sections.append((labels, tenant.workspace.metrics()))
            gauges.append(("tenant_pending", labels, float(tenant.pending)))
            if tenant.warm_probe_ms is not None:
                gauges.append(
                    ("tenant_warm_probe_ms", labels, tenant.warm_probe_ms))
        if self.slo is not None:
            report = self.slo.evaluate()
            for window in report["windows"]:
                window_label = ("inf" if window["window_s"] is None
                                else "{:g}".format(window["window_s"]))
                for objective, value in window.get("burn", {}).items():
                    gauges.append((
                        "slo_burn",
                        {"objective": objective, "window_s": window_label},
                        value))
            gauges.append(
                ("slo_ok", {}, 1.0 if report["ok"] else 0.0))
        return render_prometheus(sections, gauges=gauges)

    def _stats(self, query: Dict[str, list]) -> Tuple[int, dict]:
        names = query.get("workspace")
        if names:
            try:
                tenant = self.pool.get(names[0])
            except AdmissionError as error:
                return self._error(error.code, str(error))
            return 200, tenant.stats()
        return 200, {"workspaces": self.pool.stats()}

    # ------------------------------------------------------------------
    # the completion endpoints
    # ------------------------------------------------------------------
    async def _query_endpoint(
        self, path: str, raw_body: bytes
    ) -> Tuple[int, dict]:
        admitted = time.monotonic()
        endpoint = path.rsplit("/", 1)[1]
        try:
            body = json.loads(raw_body.decode() or "null")
        except (ValueError, UnicodeDecodeError) as error:
            return self._error(protocol.BAD_REQUEST,
                               "body is not valid JSON: {}".format(error))
        try:
            request = CompletionRequestBody(
                body, many=(endpoint == "complete_many"))
        except ProtocolError as error:
            return self._error(error.code, str(error))
        if request.request_id is None:
            request.request_id = protocol.new_request_id()
        if request.deadline_ms is None:
            request.deadline_ms = self.default_deadline_ms
        try:
            tenant = self.pool.get(request.workspace)
        except AdmissionError as error:
            status, payload = self._error(error.code, str(error))
            payload["request_id"] = request.request_id
            return status, payload

        queued = time.monotonic()
        metrics = tenant.workspace.engine.metrics
        metrics.incr("server_requests")
        loop = asyncio.get_running_loop()
        degraded: List[str] = []
        truncated = 0
        spans: Optional[List[dict]] = None
        try:
            if endpoint == "explain":
                completions = await loop.run_in_executor(
                    None, tenant.explain, request)
                status, payload = 200, {
                    "workspace": request.workspace,
                    "query": request.queries[0],
                    "completions": [protocol.completion_to_dict(c)
                                    for c in completions],
                }
                code, query_count, completion_count = (
                    "ok", 1, len(completions))
            else:
                records = await loop.run_in_executor(
                    None, tenant.complete, request)
                results = [protocol.record_to_dict(r) for r in records]
                if endpoint == "complete":
                    payload = dict(results[0])
                    payload["workspace"] = request.workspace
                else:
                    payload = {"workspace": request.workspace,
                               "results": results}
                status = 200
                code = ("parse_error" if results[0].get("parse_error")
                        else "ok")
                if endpoint == "complete" and code == "parse_error":
                    status = protocol.http_status(protocol.PARSE_ERROR)
                query_count = len(records)
                completion_count = sum(len(r.suggestions) for r in records)
                degraded = sorted(
                    set().union(*(r.degraded for r in records)))
                truncated = sum(1 for r in records if r.truncated)
                if request.trace:
                    spans = _merge_spans(records)
                    if endpoint == "complete" and spans is not None:
                        payload["spans"] = spans
        except (AdmissionError, ProtocolError) as error:
            status, payload = self._error(error.code, str(error))
            code, query_count, completion_count = error.code, 0, 0
            metrics.incr("server_shed" if code in (
                protocol.SHED, protocol.DEADLINE_EXCEEDED)
                else "server_rejected")
        except Exception as error:  # noqa: BLE001 - last-resort boundary
            status, payload = self._error(
                protocol.INTERNAL, "{}: {}".format(type(error).__name__,
                                                   error))
            code, query_count, completion_count = protocol.INTERNAL, 0, 0
            metrics.incr("server_errors")
        else:
            metrics.incr("server_ok")
        payload["request_id"] = request.request_id

        now = time.monotonic()
        elapsed_ms = (now - admitted) * 1000.0
        shed = code in (protocol.SHED, protocol.DEADLINE_EXCEEDED)
        metrics.observe("server_latency_ms", elapsed_ms,
                        bounds=LATENCY_BOUNDS_MS)
        if self.slo is not None:
            self.slo.record(
                elapsed_ms,
                error=code == protocol.INTERNAL,
                shed=shed,
                degraded=bool(degraded or truncated
                              or request.fault_events),
            )
        tenant.run_log.server_request(
            endpoint="/v1/{}".format(endpoint),
            status=status,
            code=code,
            elapsed_ms=elapsed_ms,
            workspace=request.workspace,
            queue_ms=(queued - admitted) * 1000.0,
            deadline_ms=request.deadline_ms,
            queries=query_count,
            completions=completion_count,
            shed=shed,
            request_id=request.request_id,
            degraded=degraded or None,
            truncated=truncated or None,
            faults=request.fault_events or None,
            spans=spans,
        )
        return status, payload


# ----------------------------------------------------------------------
# synchronous embedding
# ----------------------------------------------------------------------

class ServerHandle:
    """A running server on a background event-loop thread."""

    def __init__(self, server: CompletionServer, loop: asyncio.AbstractEventLoop,
                 thread: threading.Thread) -> None:
        self.server = server
        self._loop = loop
        self._thread = thread

    @property
    def url(self) -> str:
        return self.server.url

    @property
    def port(self) -> int:
        return self.server.port

    def stop(self, drain: bool = True, timeout: float = 30.0) -> None:
        """Gracefully stop the server and join its thread."""
        if not self._thread.is_alive():
            return
        future = asyncio.run_coroutine_threadsafe(
            self.server.stop(drain=drain), self._loop)
        future.result(timeout=timeout)
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=timeout)

    def __enter__(self) -> "ServerHandle":
        return self

    def __exit__(self, *_exc) -> None:
        self.stop()


def start_in_thread(
    universes: Iterable[str] = ("paint", "geometry", "bcl"),
    host: str = "127.0.0.1",
    port: int = 0,
    default_deadline_ms: Optional[float] = None,
    run_log_dir: Optional[str] = None,
    pool: Optional[EnginePool] = None,
    slo: Union[str, SLOObjectives, None] = None,
    fault_plan: Union[ChaosSpec, Dict[str, Any], str, None] = None,
) -> ServerHandle:
    """Start a :class:`CompletionServer` on a daemon thread and return
    once it is warm and listening (the handle knows the bound port)."""
    server = CompletionServer(
        pool=pool or EnginePool(universes),
        host=host, port=port,
        default_deadline_ms=default_deadline_ms,
        run_log_dir=run_log_dir,
        slo=slo,
        fault_plan=fault_plan,
    )
    loop = asyncio.new_event_loop()
    ready = threading.Event()
    startup_error: list = []

    def run() -> None:
        asyncio.set_event_loop(loop)
        try:
            loop.run_until_complete(server.start())
        except Exception as error:  # pragma: no cover - bind failures
            startup_error.append(error)
            ready.set()
            return
        ready.set()
        try:
            loop.run_forever()
        finally:
            loop.close()

    thread = threading.Thread(target=run, name="repro-serve", daemon=True)
    thread.start()
    ready.wait()
    if startup_error:  # pragma: no cover - bind failures
        raise startup_error[0]
    return ServerHandle(server, loop, thread)
