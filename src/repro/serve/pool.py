"""The warm engine pool behind the completion server.

One :class:`Tenant` per named workspace: a warm
:class:`~repro.ide.workspace.Workspace` (engine + indexes + cross-query
cache), its own :class:`~repro.obs.metrics.Metrics` registry (the
engine's), its own structured run log, and a **single-threaded**
executor.  Every request for a workspace runs on that one thread —
that is the session affinity: cache warmth survives across requests,
and concurrent clients hammering one tenant serialise into exactly the
order the engine sees, so results match serial execution.

Admission control happens before a request ever reaches the tenant
thread.  A request carrying ``deadline_ms`` is shed up front
(429-style) when the tenant's queue is already estimated to outlast
the deadline; once dequeued, whatever deadline remains is mapped onto
the engine's own :class:`~repro.engine.budget.QueryBudget`, so the
queue wait and the engine's wall both charge the same clock
(docs/SERVING.md, docs/RESILIENCE.md).
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Dict, Iterable, List, Optional, Union

from ..ide.session import CompletionSession, QueryRecord
from ..ide.workspace import Workspace
from ..testing import faults
from . import protocol
from .chaos import ChaosSpec, ChaosStream
from .protocol import CompletionRequestBody, ProtocolError

#: queue-wait estimate before any request has finished (ms) — only a
#: fallback: :meth:`Tenant.warm` replaces it with a measured probe-query
#: latency, so a cold guess never drives admission on a warmed server
_INITIAL_ESTIMATE_MS = 2.0
#: EMA weight of the latest request latency in the queue-wait estimate
_ESTIMATE_ALPHA = 0.3


class AdmissionError(Exception):
    """A request refused or expired before reaching the engine."""

    def __init__(self, code: str, message: str) -> None:
        super().__init__(message)
        self.code = code


class Tenant:
    """One named workspace's long-lived serving state."""

    def __init__(self, name: str, workspace: Workspace) -> None:
        self.name = name
        self.workspace = workspace
        self.run_log = workspace.start_run_log(label="serve/{}".format(name))
        #: all requests for this tenant run on this one thread
        self.executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="tenant-{}".format(name))
        self.warmed = False
        self._admission_lock = threading.Lock()
        self._pending = 0
        self._avg_ms = _INITIAL_ESTIMATE_MS
        #: measured warmup probe latency (ms); ``None`` until warmed or
        #: when the probe could not run
        self.warm_probe_ms: Optional[float] = None
        #: per-tenant chaos draw stream (chaos-through-serve); ``None``
        #: unless the pool mounted a :class:`ChaosSpec`
        self.chaos: Optional[ChaosStream] = None

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def warm(self) -> None:
        """Warm the engine's indexes and global root pool on the tenant
        thread (so the warm state lives where the queries will run),
        then time one representative query there to seed the admission
        EMA with a measured latency instead of the cold-start guess."""
        self.executor.submit(self.workspace.engine.warm).result()
        probe_ms = self.executor.submit(self._warm_probe).result()
        if probe_ms is not None:
            self.warm_probe_ms = probe_ms
            with self._admission_lock:
                self._avg_ms = probe_ms
        self.warmed = True

    def _warm_probe(self) -> Optional[float]:
        """Run one battery query (or a bare hole for custom universes)
        on the tenant thread; returns its wall ms, ``None`` on failure
        (the probe must never block serving)."""
        try:
            try:
                from ..eval.battery import battery_for
                battery = battery_for(self.name)
                session = battery.session(self.workspace, n=5)
                query = battery.queries[0]
            except ValueError:
                session = CompletionSession(self.workspace, n=5)
                query = "?"
            start = time.monotonic()
            session.complete(query)
            return (time.monotonic() - start) * 1000.0
        except Exception:  # pragma: no cover - diagnostics only
            return None

    def set_chaos(self, spec: Optional[ChaosSpec]) -> None:
        """(Un)mount serve-path fault injection for this tenant."""
        self.chaos = spec.stream(self.name) if spec is not None else None

    def shutdown(self, drain: bool = True) -> None:
        """Stop the tenant thread; with ``drain`` (the default) queued
        requests finish first."""
        self.executor.shutdown(wait=drain, cancel_futures=not drain)

    # ------------------------------------------------------------------
    # admission control
    # ------------------------------------------------------------------
    def admit(self, deadline_ms: Optional[float]) -> float:
        """Admit a request (or raise :class:`AdmissionError` with the
        ``shed`` code) and return its admission timestamp.

        The estimate is deliberately simple — queue depth times a
        latency EMA — because it only has to be right about order of
        magnitude: a request whose deadline the queue would blow by 10x
        must not sit in the queue holding a connection open.
        """
        with self._admission_lock:
            if deadline_ms is not None:
                estimated_wait = self._pending * self._avg_ms
                if estimated_wait > deadline_ms:
                    raise AdmissionError(
                        protocol.SHED,
                        "queue of {} request(s) (~{:.0f} ms) would blow the "
                        "{:.0f} ms deadline".format(
                            self._pending, estimated_wait, deadline_ms))
            self._pending += 1
        return time.monotonic()

    def _finish(self, admitted: float) -> float:
        """Record a request leaving the engine; returns its total ms."""
        elapsed_ms = (time.monotonic() - admitted) * 1000.0
        with self._admission_lock:
            self._pending -= 1
            self._avg_ms += _ESTIMATE_ALPHA * (elapsed_ms - self._avg_ms)
        return elapsed_ms

    def _cancel(self) -> None:
        with self._admission_lock:
            self._pending -= 1

    @property
    def pending(self) -> int:
        """Requests admitted but not yet finished (queue depth)."""
        return self._pending

    # ------------------------------------------------------------------
    # query execution (tenant thread)
    # ------------------------------------------------------------------
    def _session(self, request: CompletionRequestBody) -> CompletionSession:
        session = CompletionSession(self.workspace, n=request.n)
        try:
            for name, type_name in request.locals.items():
                session.declare(name, type_name)
            if request.this is not None:
                session.set_this(request.this)
            if request.expected is not None:
                session.set_expected(request.expected)
        except ValueError as error:
            raise ProtocolError(protocol.BAD_REQUEST, str(error))
        session.keyword = request.keyword
        if request.max_steps is not None:
            session.step_budget = request.max_steps
        if request.trace:
            session.trace = True
        return session

    def _run(self, request: CompletionRequestBody,
             admitted: float) -> List[QueryRecord]:
        """Execute on the tenant thread: re-check the deadline (the
        queue may have eaten it), give the engine what remains, run."""
        if request.deadline_ms is not None:
            remaining = request.deadline_ms - (
                (time.monotonic() - admitted) * 1000.0)
            if remaining <= 0:
                raise AdmissionError(
                    protocol.DEADLINE_EXCEEDED,
                    "deadline of {:.0f} ms expired in the queue".format(
                        request.deadline_ms))
        session = self._session(request)
        if request.deadline_ms is not None:
            session.timeout_ms = remaining
        plan = self.chaos.next_plan() if self.chaos is not None else None
        previous = faults.install_local(plan) if plan is not None else None
        try:
            with self.run_log.bind(request_id=request.request_id):
                if len(request.queries) == 1:
                    return [session.complete(request.queries[0])]
                return session.complete_many(request.queries)
        finally:
            if plan is not None:
                faults.uninstall_local(previous)
                request.fault_events = [
                    "{}@{}".format(site, call)
                    for site, call in plan.triggered]

    def complete(self, request: CompletionRequestBody) -> List[QueryRecord]:
        """Admit, queue, and run a request; blocks the calling thread
        (the server wraps this in ``run_in_executor``)."""
        admitted = self.admit(request.deadline_ms)
        try:
            future = self.executor.submit(self._run, request, admitted)
        except RuntimeError:
            # executor already shut down mid-flight
            self._cancel()
            raise AdmissionError(protocol.SHED, "tenant is shutting down")
        try:
            return future.result()
        finally:
            self._finish(admitted)

    def explain(self, request: CompletionRequestBody) -> list:
        """Ranking attribution on the tenant thread (same admission)."""
        admitted = self.admit(request.deadline_ms)

        def run():
            session = self._session(request)
            with self.run_log.bind(request_id=request.request_id):
                return session.explain(rank=request.rank,
                                       source=request.queries[0])

        try:
            future = self.executor.submit(run)
        except RuntimeError:
            self._cancel()
            raise AdmissionError(protocol.SHED, "tenant is shutting down")
        try:
            return future.result()
        finally:
            self._finish(admitted)

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def stats(self) -> dict:
        document = {
            "workspace": self.name,
            "universe_version": self.workspace.ts.version,
            "warmed": self.warmed,
            "pending": self._pending,
            "metrics": self.workspace.metrics(),
            "run_log_records": len(self.run_log),
        }
        if self.warm_probe_ms is not None:
            document["warm_probe_ms"] = self.warm_probe_ms
        cache = self.workspace.cache_stats()
        if cache is not None:
            document["cache"] = cache
        return document


class EnginePool:
    """The server's tenants: named workspaces with warm engines."""

    def __init__(self, universes: Iterable[str] = ("paint", "geometry",
                                                   "bcl")) -> None:
        self.tenants: Dict[str, Tenant] = {}
        self.chaos_spec: Optional[ChaosSpec] = None
        for key in universes:
            self.tenants[key] = Tenant(key, Workspace.builtin(key))

    def add_workspace(self, name: str, workspace: Workspace) -> Tenant:
        """Serve an already-built workspace under ``name`` (how tests
        and embedders mount custom universes)."""
        tenant = Tenant(name, workspace)
        tenant.set_chaos(self.chaos_spec)
        self.tenants[name] = tenant
        return tenant

    def set_chaos(
        self,
        spec: Union[ChaosSpec, Dict[str, object], str, None],
    ) -> None:
        """Mount (or clear, with ``None``) chaos-through-serve: every
        tenant gets a deterministic per-tenant draw stream off the
        spec's seed.  Accepts a :class:`ChaosSpec`, a dict, a JSON
        string, or a path to a JSON file."""
        self.chaos_spec = (
            ChaosSpec.from_source(spec) if spec is not None else None)
        for tenant in self.tenants.values():
            tenant.set_chaos(self.chaos_spec)

    def get(self, name: str) -> Tenant:
        try:
            return self.tenants[name]
        except KeyError:
            raise AdmissionError(
                protocol.UNKNOWN_WORKSPACE,
                "unknown workspace {!r}; this server exposes: {}".format(
                    name, ", ".join(sorted(self.tenants))))

    def warm_all(self) -> None:
        for tenant in self.tenants.values():
            tenant.warm()

    def shutdown(self, drain: bool = True) -> None:
        for tenant in self.tenants.values():
            tenant.shutdown(drain=drain)

    def stats(self) -> dict:
        return {name: tenant.stats()
                for name, tenant in sorted(self.tenants.items())}
