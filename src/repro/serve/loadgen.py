"""The load generator: multi-worker replay against a live server.

``run_loadgen`` fans ``n_workers`` threads out against a completion
server — each worker owns one keep-alive connection and replays the
universe's pinned golden battery (:mod:`repro.eval.battery`) for
``duration_s`` seconds, every request carrying ``deadline_ms`` when one
is configured.  With no ``url`` it spawns an in-process server first
(the CI smoke path and the test fixture), so one call measures the
whole stack.

The result is a schema-versioned ``BENCH_serve_<label>.json`` in the
standard bench format (``repro-bench`` v1): latency percentiles land in
a ``serve/<universe>`` workload entry the existing ``repro diff`` /
``compare_bench`` tooling already understands, and a ``serve`` section
adds the service-level numbers — throughput, shed rate, per-worker
request counts (docs/SERVING.md, docs/PERFORMANCE.md).
"""

from __future__ import annotations

import threading
import time
from typing import Any, Callable, Dict, List, Optional

from ..eval.battery import battery_for
from ..eval.bench import VERSION, _FORMAT, _percentile
from .client import ServeClient

#: outcome categories a worker tallies per request
_OK, _SHED, _ERROR = "ok", "shed", "error"


class _WorkerStats:
    """One worker's tally (touched only by its own thread)."""

    __slots__ = ("latencies_ms", "ok", "shed", "errors", "steps",
                 "completions")

    def __init__(self) -> None:
        self.latencies_ms: List[float] = []
        self.ok = 0
        self.shed = 0
        self.errors = 0
        self.steps = 0
        self.completions = 0

    @property
    def requests(self) -> int:
        return self.ok + self.shed + self.errors


def _classify(status: int, body: Dict[str, Any]) -> str:
    if status == 200:
        return _OK
    error = body.get("error") or {}
    if error.get("code") in ("shed", "deadline_exceeded"):
        return _SHED
    return _ERROR


def _worker(
    url: str,
    universe: str,
    deadline_ms: Optional[float],
    n: int,
    deadline: float,
    stats: _WorkerStats,
) -> None:
    battery = battery_for(universe)
    body_base: Dict[str, Any] = {"locals": battery.locals, "n": n}
    if battery.this_type is not None:
        body_base["this"] = battery.this_type
    if deadline_ms is not None:
        body_base["deadline_ms"] = deadline_ms
    with ServeClient(url) as client:
        while time.monotonic() < deadline:
            for query in battery.queries:
                if time.monotonic() >= deadline:
                    break
                started = time.monotonic()
                try:
                    status, body = client.complete(universe, query,
                                                   **body_base)
                except OSError:
                    stats.errors += 1
                    continue
                elapsed_ms = (time.monotonic() - started) * 1000.0
                outcome = _classify(status, body)
                if outcome == _OK:
                    stats.ok += 1
                    stats.latencies_ms.append(elapsed_ms)
                    stats.steps += int(body.get("steps", 0))
                    stats.completions += len(body.get("suggestions", []))
                elif outcome == _SHED:
                    stats.shed += 1
                else:
                    stats.errors += 1


def run_loadgen(
    url: Optional[str] = None,
    universe: str = "paint",
    n_workers: int = 4,
    duration_s: float = 5.0,
    deadline_ms: Optional[float] = None,
    label: str = "serve",
    n: int = 10,
    run_log_dir: Optional[str] = None,
    log: Optional[Callable[[str], None]] = None,
) -> Dict[str, Any]:
    """Drive the load and return the BENCH document.

    With ``url=None`` an in-process server over ``universe`` is spawned
    on an ephemeral port (and torn down afterwards); ``run_log_dir``
    then streams the spawned server's per-tenant run logs there.  A
    tiny ``deadline_ms`` is a legitimate configuration: shed requests
    are counted, not raised — the document simply reports a high
    ``shed_rate``.
    """
    emit = log or (lambda _line: None)
    battery_for(universe)  # validate the universe key up front
    if n_workers <= 0:
        raise ValueError("n_workers must be positive")
    if duration_s <= 0:
        raise ValueError("duration_s must be positive")

    handle = None
    if url is None:
        from .server import start_in_thread

        emit("spawning in-process server over {!r}...".format(universe))
        handle = start_in_thread((universe,), run_log_dir=run_log_dir)
        url = handle.url
    try:
        emit("load: {} worker(s) x {:.1f}s against {} (deadline {})".format(
            n_workers, duration_s, url,
            "{:.0f} ms".format(deadline_ms) if deadline_ms else "none"))
        per_worker = [_WorkerStats() for _ in range(n_workers)]
        deadline = time.monotonic() + duration_s
        started = time.monotonic()
        threads = [
            threading.Thread(
                target=_worker,
                args=(url, universe, deadline_ms, n, deadline, stats),
                name="loadgen-{}".format(index),
            )
            for index, stats in enumerate(per_worker)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        wall_s = time.monotonic() - started
    finally:
        if handle is not None:
            handle.stop()

    latencies = sorted(
        value for stats in per_worker for value in stats.latencies_ms)
    requests = sum(stats.requests for stats in per_worker)
    ok = sum(stats.ok for stats in per_worker)
    shed = sum(stats.shed for stats in per_worker)
    errors = sum(stats.errors for stats in per_worker)
    document: Dict[str, Any] = {
        "format": _FORMAT,
        "version": VERSION,
        "label": "serve_{}".format(label),
        "quick": False,
        "seed": None,
        "workloads": [{
            "name": "serve/{}".format(universe),
            "queries": ok,
            "repeats": 1,
            "p50_ms": _percentile(latencies, 0.50),
            "p95_ms": _percentile(latencies, 0.95),
            "steps": sum(stats.steps for stats in per_worker),
        }],
        "serve": {
            "url": url,
            "universe": universe,
            "n_workers": n_workers,
            "duration_s": duration_s,
            "wall_s": round(wall_s, 3),
            "deadline_ms": deadline_ms,
            "requests": requests,
            "ok": ok,
            "shed": shed,
            "errors": errors,
            "shed_rate": (shed / requests) if requests else 0.0,
            "throughput_rps": (requests / wall_s) if wall_s > 0 else 0.0,
            "completions": sum(s.completions for s in per_worker),
            "per_worker_requests": [s.requests for s in per_worker],
        },
    }
    return document


def render_loadgen(document: Dict[str, Any]) -> List[str]:
    """Human-readable summary of one loadtest document."""
    serve = document["serve"]
    workload = document["workloads"][0]
    lines = ["loadtest '{}' against {}".format(
        document["label"], serve["url"])]
    lines.append(
        "  {} worker(s) x {:.1f}s on {!r}: {} requests "
        "({:.1f} req/s)".format(
            serve["n_workers"], serve["duration_s"], serve["universe"],
            serve["requests"], serve["throughput_rps"]))
    lines.append(
        "  ok {} / shed {} / errors {}  (shed rate {:.1%})".format(
            serve["ok"], serve["shed"], serve["errors"],
            serve["shed_rate"]))
    lines.append(
        "  latency p50 {:.2f} ms, p95 {:.2f} ms ({} steps)".format(
            workload["p50_ms"], workload["p95_ms"], workload["steps"]))
    return lines
