"""The load generator: multi-worker replay against a live server.

``run_loadgen`` fans ``n_workers`` threads out against a completion
server — each worker owns one keep-alive connection and replays the
universe's pinned golden battery (:mod:`repro.eval.battery`) for
``duration_s`` seconds, every request carrying ``deadline_ms`` when one
is configured.  With no ``url`` it spawns an in-process server first
(the CI smoke path and the test fixture), so one call measures the
whole stack.

The result is a schema-versioned ``BENCH_serve_<label>.json`` in the
standard bench format (``repro-bench`` v1): latency percentiles land in
a ``serve/<universe>`` workload entry the existing ``repro diff`` /
``compare_bench`` tooling already understands, and a ``serve`` section
adds the service-level numbers — throughput, shed rate, per-worker
request counts (docs/SERVING.md, docs/PERFORMANCE.md).
"""

from __future__ import annotations

import threading
import time
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..eval.battery import battery_for
from ..eval.bench import VERSION, _FORMAT, _percentile
from ..obs.expo import LATENCY_BOUNDS_MS
from ..obs.metrics import Histogram
from .client import ServeClient

#: outcome categories a worker tallies per request
_OK, _SHED, _ERROR = "ok", "shed", "error"

#: how many of the slowest requests the document names by request_id
_SLOWEST_N = 10


class _WorkerStats:
    """One worker's tally (touched only by its own thread)."""

    __slots__ = ("latencies_ms", "samples", "ok", "shed", "errors",
                 "steps", "completions", "degraded", "truncated")

    def __init__(self) -> None:
        self.latencies_ms: List[float] = []
        #: (request_id, latency_ms) per ok request — the correlation
        #: trail back into the server's run log
        self.samples: List[Tuple[str, float]] = []
        self.ok = 0
        self.shed = 0
        self.errors = 0
        self.steps = 0
        self.completions = 0
        self.degraded = 0
        self.truncated = 0

    @property
    def requests(self) -> int:
        return self.ok + self.shed + self.errors


def _classify(status: int, body: Dict[str, Any]) -> str:
    if status == 200:
        return _OK
    error = body.get("error") or {}
    if error.get("code") in ("shed", "deadline_exceeded"):
        return _SHED
    return _ERROR


def _worker(
    url: str,
    universe: str,
    deadline_ms: Optional[float],
    n: int,
    deadline: float,
    stats: _WorkerStats,
    index: int,
) -> None:
    battery = battery_for(universe)
    body_base: Dict[str, Any] = {"locals": battery.locals, "n": n}
    if battery.this_type is not None:
        body_base["this"] = battery.this_type
    if deadline_ms is not None:
        body_base["deadline_ms"] = deadline_ms
    sequence = 0
    with ServeClient(url) as client:
        while time.monotonic() < deadline:
            for query in battery.queries:
                if time.monotonic() >= deadline:
                    break
                sequence += 1
                request_id = "w{}-{}".format(index, sequence)
                started = time.monotonic()
                try:
                    status, body = client.complete(
                        universe, query, request_id=request_id, **body_base)
                except OSError:
                    stats.errors += 1
                    continue
                elapsed_ms = (time.monotonic() - started) * 1000.0
                outcome = _classify(status, body)
                if outcome == _OK and body.get("request_id") != request_id:
                    # the correlation contract broke — that is an error,
                    # not a slow request
                    outcome = _ERROR
                if outcome == _OK:
                    stats.ok += 1
                    stats.latencies_ms.append(elapsed_ms)
                    stats.samples.append((request_id, elapsed_ms))
                    stats.steps += int(body.get("steps", 0))
                    stats.completions += len(body.get("suggestions", []))
                    if body.get("degraded"):
                        stats.degraded += 1
                    if body.get("truncated"):
                        stats.truncated += 1
                elif outcome == _SHED:
                    stats.shed += 1
                else:
                    stats.errors += 1


def run_loadgen(
    url: Optional[str] = None,
    universe: str = "paint",
    n_workers: int = 4,
    duration_s: float = 5.0,
    deadline_ms: Optional[float] = None,
    label: str = "serve",
    n: int = 10,
    run_log_dir: Optional[str] = None,
    log: Optional[Callable[[str], None]] = None,
    fault_plan: Optional[Any] = None,
) -> Dict[str, Any]:
    """Drive the load and return the BENCH document.

    With ``url=None`` an in-process server over ``universe`` is spawned
    on an ephemeral port (and torn down afterwards); ``run_log_dir``
    then streams the spawned server's per-tenant run logs there, and
    ``fault_plan`` (a :class:`~repro.serve.chaos.ChaosSpec` source)
    mounts chaos-through-serve on the spawned server.  A tiny
    ``deadline_ms`` is a legitimate configuration: shed requests are
    counted, not raised — the document simply reports a high
    ``shed_rate``.
    """
    emit = log or (lambda _line: None)
    battery_for(universe)  # validate the universe key up front
    if n_workers <= 0:
        raise ValueError("n_workers must be positive")
    if duration_s <= 0:
        raise ValueError("duration_s must be positive")
    chaos_spec = None
    if fault_plan is not None:
        if url is not None:
            raise ValueError(
                "fault_plan only applies to a spawned in-process server; "
                "a remote server mounts its own via --fault-plan")
        from .chaos import ChaosSpec

        chaos_spec = ChaosSpec.from_source(fault_plan)

    handle = None
    if url is None:
        from .server import start_in_thread

        emit("spawning in-process server over {!r}{}...".format(
            universe, " with chaos" if chaos_spec is not None else ""))
        handle = start_in_thread((universe,), run_log_dir=run_log_dir,
                                 fault_plan=chaos_spec)
        url = handle.url
    try:
        emit("load: {} worker(s) x {:.1f}s against {} (deadline {})".format(
            n_workers, duration_s, url,
            "{:.0f} ms".format(deadline_ms) if deadline_ms else "none"))
        per_worker = [_WorkerStats() for _ in range(n_workers)]
        deadline = time.monotonic() + duration_s
        started = time.monotonic()
        threads = [
            threading.Thread(
                target=_worker,
                args=(url, universe, deadline_ms, n, deadline, stats,
                      index),
                name="loadgen-{}".format(index),
            )
            for index, stats in enumerate(per_worker)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        wall_s = time.monotonic() - started
    finally:
        if handle is not None:
            handle.stop()

    latencies = sorted(
        value for stats in per_worker for value in stats.latencies_ms)
    requests = sum(stats.requests for stats in per_worker)
    ok = sum(stats.ok for stats in per_worker)
    shed = sum(stats.shed for stats in per_worker)
    errors = sum(stats.errors for stats in per_worker)
    histogram = Histogram(LATENCY_BOUNDS_MS)
    for value in latencies:
        histogram.observe(value)
    samples = sorted(
        (sample for stats in per_worker for sample in stats.samples),
        key=lambda sample: sample[1], reverse=True)
    slowest = [{"request_id": request_id,
                "latency_ms": round(latency_ms, 3)}
               for request_id, latency_ms in samples[:_SLOWEST_N]]
    document: Dict[str, Any] = {
        "format": _FORMAT,
        "version": VERSION,
        "label": "serve_{}".format(label),
        "quick": False,
        "seed": None,
        "workloads": [{
            "name": "serve/{}".format(universe),
            "queries": ok,
            "repeats": 1,
            "p50_ms": _percentile(latencies, 0.50),
            "p95_ms": _percentile(latencies, 0.95),
            "steps": sum(stats.steps for stats in per_worker),
        }],
        "serve": {
            "url": url,
            "universe": universe,
            "n_workers": n_workers,
            "duration_s": duration_s,
            "wall_s": round(wall_s, 3),
            "deadline_ms": deadline_ms,
            "requests": requests,
            "ok": ok,
            "shed": shed,
            "errors": errors,
            "shed_rate": (shed / requests) if requests else 0.0,
            "throughput_rps": (requests / wall_s) if wall_s > 0 else 0.0,
            "completions": sum(s.completions for s in per_worker),
            "per_worker_requests": [s.requests for s in per_worker],
            "degraded": sum(s.degraded for s in per_worker),
            "truncated": sum(s.truncated for s in per_worker),
            "latency_histogram": {
                "bounds": list(histogram.bounds),
                "buckets": list(histogram.buckets),
                "count": histogram.count,
            },
            "slowest_requests": slowest,
        },
    }
    if chaos_spec is not None:
        document["serve"]["chaos"] = chaos_spec.to_dict()
    return document


def render_loadgen(document: Dict[str, Any]) -> List[str]:
    """Human-readable summary of one loadtest document."""
    serve = document["serve"]
    workload = document["workloads"][0]
    lines = ["loadtest '{}' against {}".format(
        document["label"], serve["url"])]
    lines.append(
        "  {} worker(s) x {:.1f}s on {!r}: {} requests "
        "({:.1f} req/s)".format(
            serve["n_workers"], serve["duration_s"], serve["universe"],
            serve["requests"], serve["throughput_rps"]))
    lines.append(
        "  ok {} / shed {} / errors {}  (shed rate {:.1%})".format(
            serve["ok"], serve["shed"], serve["errors"],
            serve["shed_rate"]))
    lines.append(
        "  latency p50 {:.2f} ms, p95 {:.2f} ms ({} steps)".format(
            workload["p50_ms"], workload["p95_ms"], workload["steps"]))
    if serve.get("degraded") or serve.get("truncated"):
        lines.append("  degraded {} / truncated {}".format(
            serve.get("degraded", 0), serve.get("truncated", 0)))
    if serve.get("chaos"):
        chaos = serve["chaos"]
        lines.append("  chaos: seed={} rate={:.0%} over {}".format(
            chaos["seed"], chaos["rate"], ", ".join(chaos["sites"])))
    slowest = serve.get("slowest_requests") or []
    if slowest:
        lines.append("  slowest: {}".format(", ".join(
            "{} ({:.1f} ms)".format(s["request_id"], s["latency_ms"])
            for s in slowest[:3])))
    return lines
