"""Chaos-through-serve: seeded fault plans mounted into tenant sessions.

The fuzz harness already proves the *engine* honours the chaos
contract — injected faults surface as ``degraded``/``truncated``
query status, never as escaped exceptions.  This module pushes the
same contract through the HTTP boundary: ``repro serve --fault-plan
chaos.json`` mounts a :class:`ChaosSpec` into the :class:`EnginePool`,
and each admitted request draws a fresh seeded :class:`FaultPlan`
from its tenant's :class:`ChaosStream` before running on the tenant
thread (installed thread-locally, so concurrent tenants never clobber
each other — see :func:`repro.testing.faults.install_local`).

Everything is deterministic given the seed: the per-tenant stream is
seeded ``"{seed}:{tenant}"``, and each draw consumes a fixed number of
rng calls, so a chaos load test replays identically.  Triggered faults
come back in the ``server_request`` run-log record (``faults`` field,
``"site@call"`` strings) and burn the SLO error budget as degradation.
See docs/RESILIENCE.md and docs/SERVING.md.
"""

from __future__ import annotations

import json
import random
import threading
from typing import Any, Dict, Optional, Sequence, Tuple, Union

from ..testing.faults import FaultPlan, QUERY_SITES

#: default ``times`` choices a draw picks from (``None`` = fault every
#: call from ``on_call`` onward — the sustained-outage shape)
DEFAULT_TIMES: Tuple[Optional[int], ...] = (1, 2, 3, None)


class ChaosSpec:
    """Configuration for serve-path fault injection.

    ``rate`` is the fraction of admitted requests that get a fault plan
    (1.0 = every request).  ``sites`` restricts which injection sites
    faults are drawn from; the default is every query-path site.
    """

    __slots__ = ("seed", "rate", "sites", "max_on_call", "times")

    def __init__(
        self,
        seed: int = 0,
        rate: float = 1.0,
        sites: Sequence[str] = QUERY_SITES,
        max_on_call: int = 12,
        times: Sequence[Optional[int]] = DEFAULT_TIMES,
    ) -> None:
        if not 0.0 <= float(rate) <= 1.0:
            raise ValueError("chaos rate must be in [0, 1]")
        sites = tuple(sites)
        unknown = [site for site in sites if site not in QUERY_SITES]
        if unknown:
            raise ValueError(
                "unknown chaos site(s) {}; query-path sites: {}".format(
                    ", ".join(map(repr, unknown)), ", ".join(QUERY_SITES)))
        if not sites:
            raise ValueError("chaos spec needs at least one site")
        if int(max_on_call) < 1:
            raise ValueError("max_on_call must be >= 1")
        self.seed = int(seed)
        self.rate = float(rate)
        self.sites = sites
        self.max_on_call = int(max_on_call)
        self.times = tuple(times) if times else DEFAULT_TIMES

    @classmethod
    def from_source(
        cls, source: Union[str, Dict[str, Any], "ChaosSpec"],
    ) -> "ChaosSpec":
        """Build a spec from a dict, a JSON string, or a path to a JSON
        file — the ``--fault-plan`` CLI spelling accepts the latter two."""
        if isinstance(source, ChaosSpec):
            return source
        if isinstance(source, str):
            text = source
            if not source.lstrip().startswith("{"):
                with open(source, "r", encoding="utf-8") as handle:
                    text = handle.read()
            try:
                source = json.loads(text)
            except ValueError:
                raise ValueError(
                    "fault plan must be a JSON object "
                    "(inline or a path to one)")
        if not isinstance(source, dict):
            raise ValueError("fault plan must be a JSON object")
        known = ("seed", "rate", "sites", "max_on_call", "times")
        unknown = sorted(set(source) - set(known))
        if unknown:
            raise ValueError(
                "unknown fault-plan key(s) {}; known: {}".format(
                    ", ".join(map(repr, unknown)), ", ".join(known)))
        kwargs: Dict[str, Any] = {}
        for key in known:
            if key in source:
                kwargs[key] = source[key]
        if "times" in kwargs:
            kwargs["times"] = tuple(
                None if value is None else int(value)
                for value in kwargs["times"])
        return cls(**kwargs)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "seed": self.seed,
            "rate": self.rate,
            "sites": list(self.sites),
            "max_on_call": self.max_on_call,
            "times": list(self.times),
        }

    def stream(self, name: str) -> "ChaosStream":
        """A deterministic per-tenant draw stream seeded off ``name``."""
        return ChaosStream(self, name)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "ChaosSpec(seed={}, rate={}, sites={})".format(
            self.seed, self.rate, list(self.sites))


class ChaosStream:
    """A locked rng drawing one :class:`FaultPlan` per request.

    Each :meth:`next_plan` call consumes exactly four rng values, so the
    draw sequence is independent of which requests actually run faults.
    """

    def __init__(self, spec: ChaosSpec, name: str) -> None:
        self.spec = spec
        self.name = name
        self._rng = random.Random("{}:{}".format(spec.seed, name))
        self._lock = threading.Lock()
        self.draws = 0

    def next_plan(self) -> Optional[FaultPlan]:
        """Draw the next plan; ``None`` when this request runs clean."""
        spec = self.spec
        with self._lock:
            self.draws += 1
            gate = self._rng.random()
            site = self._rng.choice(spec.sites)
            on_call = self._rng.randint(1, spec.max_on_call)
            times = self._rng.choice(spec.times)
        if gate >= spec.rate:
            return None
        return FaultPlan().add(site, on_call=on_call, times=times)
