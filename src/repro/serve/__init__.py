"""Completion-as-a-service: the long-lived serving layer.

The engine has been in-process and single-tenant since PR 1; this
package puts it behind a request/response protocol with deadlines —
the backbone the persistent-index, hot-path, and query-mining work
plugs into (ROADMAP.md):

* :mod:`repro.serve.protocol` — JSON wire shapes, stable error codes,
  exit-style status mapping;
* :mod:`repro.serve.pool` — warm multi-tenant engine pool with
  per-workspace session affinity and deadline admission control;
* :mod:`repro.serve.server` — the asyncio HTTP/1.1 front end
  (``repro serve``);
* :mod:`repro.serve.client` — sync + async protocol clients;
* :mod:`repro.serve.loadgen` — the multi-worker load generator
  (``repro loadtest``) emitting ``BENCH_serve_<label>.json``;
* :mod:`repro.serve.chaos` — seeded per-request fault plans mounted
  into tenant sessions (``repro serve --fault-plan``).

Observability rides on every request: a correlation ``request_id``
(client supplied or generated), opt-in span tracing embedded in the
run log, ``GET /v1/metrics`` Prometheus exposition, and SLO burn-rate
verdicts in ``/v1/healthz`` (see docs/OBSERVABILITY.md).

See docs/SERVING.md.
"""

from .chaos import ChaosSpec, ChaosStream
from .client import ServeClient, async_request
from .loadgen import render_loadgen, run_loadgen
from .pool import AdmissionError, EnginePool, Tenant
from .protocol import (
    PROTOCOL_VERSION,
    CompletionRequestBody,
    ProtocolError,
    error_body,
    new_request_id,
    record_to_dict,
)
from .server import CompletionServer, ServerHandle, start_in_thread

__all__ = [
    "AdmissionError",
    "ChaosSpec",
    "ChaosStream",
    "CompletionRequestBody",
    "CompletionServer",
    "EnginePool",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "ServeClient",
    "ServerHandle",
    "Tenant",
    "async_request",
    "error_body",
    "new_request_id",
    "record_to_dict",
    "render_loadgen",
    "run_loadgen",
    "start_in_thread",
]
