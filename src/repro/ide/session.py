"""Interactive completion sessions.

A :class:`CompletionSession` is the state an editor keeps per cursor
position: the scope (locals + ``this``), result-list size, an optional
keyword filter, and a history of queries.  ``accept`` implements the
paper's iterative-refinement loop: "The user may afterward decide to
convert the 0 to ? or some other partial expression."
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from ..analysis.scope import Context
from ..codemodel.types import TypeDef
from ..deprecation import warn_deprecated
from ..engine.budget import CancellationToken, QueryBudget
from ..engine.completer import Completion, QueryStatus
from ..engine.ranking import AbstractTypeOracle
from ..obs.trace import Tracer
from ..lang.ast import Expr, Unfilled
from ..lang.parser import ParseError, parse
from ..lang.partial import Hole
from ..lang.printer import to_source
from .workspace import Workspace


@dataclass
class Suggestion:
    """One line of a result list."""

    rank: int
    score: int
    text: str
    expr: Expr


class AutoCompleteStatus(enum.Enum):
    """Why :meth:`CompletionSession.auto_complete` stopped."""

    CONVERGED = "converged"
    PARSE_ERROR = "parse_error"
    NO_SUGGESTIONS = "no_suggestions"
    NO_CONVERGENCE = "no_convergence"


@dataclass
class QueryRecord:
    """One history entry.

    ``status``/``elapsed_ms``/``degraded`` carry the resilience
    metadata of the underlying engine query: how it concluded
    (:class:`~repro.engine.completer.QueryStatus`), how long it ran,
    and which optional ranking features failed and were neutralised.
    ``truncated`` mirrors ``status.truncation`` for display.  ``cached``
    marks a whole-query cache replay, ``steps`` the expansion-step count
    the engine charged, and ``trace`` holds the exported span dicts when
    the session ran the query with tracing on.
    """

    source: str
    suggestions: List[Suggestion] = field(default_factory=list)
    error: Optional[str] = None
    elapsed_ms: Optional[float] = None
    truncated: Optional[str] = None
    degraded: Set[str] = field(default_factory=set)
    status: Optional[QueryStatus] = None
    cached: bool = False
    steps: int = 0
    trace: Optional[List[dict]] = None


def holes_for_unfilled(expr: Expr) -> Expr:
    """Rewrite every ``0`` leftover into a fresh ``?`` hole, producing the
    next partial expression of an iterative refinement."""
    if isinstance(expr, Unfilled):
        return Hole()
    from ..lang.ast import Assign, Call, Compare, FieldAccess

    if isinstance(expr, Call):
        return Call(expr.method, tuple(holes_for_unfilled(a) for a in expr.args))
    if isinstance(expr, FieldAccess):
        return FieldAccess(holes_for_unfilled(expr.base), expr.member)
    if isinstance(expr, Assign):
        return Assign(holes_for_unfilled(expr.lhs), holes_for_unfilled(expr.rhs))
    if isinstance(expr, Compare):
        return Compare(
            holes_for_unfilled(expr.lhs), holes_for_unfilled(expr.rhs), expr.op
        )
    return expr


class CompletionSession:
    """Query loop state over a workspace."""

    def __init__(
        self,
        workspace: Workspace,
        locals: Optional[Dict[str, TypeDef]] = None,
        this_type: Optional[TypeDef] = None,
        n: int = 10,
        abstypes: Optional[AbstractTypeOracle] = None,
    ) -> None:
        self.workspace = workspace
        self.locals: Dict[str, TypeDef] = dict(locals or {})
        self.this_type = this_type
        self.n = n
        self.abstypes = abstypes
        self.keyword: Optional[str] = None
        self.expected_type: Optional[TypeDef] = None
        self.history: List[QueryRecord] = []
        #: per-query wall-clock deadline (None = unlimited)
        self.timeout_ms: Optional[float] = None
        #: per-query expansion-step budget (None = unlimited)
        self.step_budget: Optional[int] = None
        #: cooperative cancellation shared by subsequent queries
        self.cancellation: Optional[CancellationToken] = None
        #: why the last :meth:`auto_complete` run stopped
        self.auto_status: Optional[AutoCompleteStatus] = None
        #: trace every query this session runs (the REPL's ``:trace``);
        #: exported spans land in ``QueryRecord.trace``
        self.trace: bool = False

    # ------------------------------------------------------------------
    # scope manipulation
    # ------------------------------------------------------------------
    def declare(self, name: str, type_name: str) -> TypeDef:
        """``:let name Type`` — add a local to the scope."""
        typedef = self.workspace.resolve_type(type_name)
        self.locals[name] = typedef
        return typedef

    def set_this(self, type_name: Optional[str]) -> Optional[TypeDef]:
        if type_name is None:
            self.this_type = None
            return None
        self.this_type = self.workspace.resolve_type(type_name)
        return self.this_type

    def set_expected(self, type_name: Optional[str]) -> Optional[TypeDef]:
        """Constrain results to a type (``void`` allowed), or clear."""
        if type_name is None:
            self.expected_type = None
            return None
        if type_name == "void":
            self.expected_type = self.workspace.ts.void_type
        else:
            self.expected_type = self.workspace.resolve_type(type_name)
        return self.expected_type

    def context(self) -> Context:
        return self.workspace.context(
            locals=dict(self.locals), this_type=self.this_type
        )

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def _make_budget(self) -> Optional[QueryBudget]:
        if (
            self.timeout_ms is None
            and self.step_budget is None
            and self.cancellation is None
        ):
            return None
        return QueryBudget(
            deadline_ms=self.timeout_ms,
            max_steps=self.step_budget,
            token=self.cancellation,
        )

    def _log_parse_failure(self, record: QueryRecord) -> None:
        """Parse failures never reach the engine, so its run log would
        miss them — record them here with status ``parse_error``."""
        run_log = self.workspace.run_log
        if run_log is not None:
            run_log.query_event(record.source, status="parse_error",
                                error=record.error, spans=record.trace)

    def _fill_record(self, record: QueryRecord, outcome) -> None:
        record.suggestions = [
            Suggestion(rank, completion.score, to_source(completion.expr),
                       completion.expr)
            for rank, completion in enumerate(outcome.completions, start=1)
        ]
        record.elapsed_ms = outcome.elapsed_ms
        record.status = outcome.status
        record.truncated = outcome.status.truncation
        record.degraded = set(outcome.degraded)
        record.cached = outcome.cached
        record.steps = outcome.steps
        record.trace = outcome.trace

    def complete(self, source: str) -> QueryRecord:
        """Parse and complete one partial expression; record it.

        Queries are best-effort under the session's budget settings: a
        tripped deadline/step budget yields the best-so-far suggestions
        with ``record.status`` naming the trip, and broken optional
        ranking features land in ``record.degraded`` — the query itself
        always returns.  With :attr:`trace` on, the record carries the
        full span tree (parsing included).
        """
        record = QueryRecord(source=source)
        context = self.context()
        tracer = Tracer() if self.trace else None
        try:
            if tracer is not None:
                with tracer.span("parse"):
                    pe = parse(source, context)
            else:
                pe = parse(source, context)
        except ParseError as error:
            record.error = str(error)
            if tracer is not None:
                tracer.finish()
                record.trace = tracer.to_dicts()
            self._log_parse_failure(record)
            self.history.append(record)
            return record
        outcome = self.workspace.engine.complete_query(
            pe,
            context,
            n=self.n,
            abstypes=self.abstypes,
            expected_type=self.expected_type,
            keyword=self.keyword,
            budget=self._make_budget(),
            tracer=tracer,
        )
        self._fill_record(record, outcome)
        self.history.append(record)
        return record

    def query(self, source: str) -> QueryRecord:
        """Deprecated alias for :meth:`complete`."""
        warn_deprecated("CompletionSession.query", "CompletionSession.complete")
        return self.complete(source)

    def explain(
        self, rank: Optional[int] = None, source: Optional[str] = None
    ) -> List[Completion]:
        """Ranking attribution for the last query (or an explicit
        ``source``): the top suggestions with a
        :class:`~repro.obs.attribution.ScoreBreakdown` attached, whose
        terms sum to each score.  ``rank`` narrows to one 1-based rank.
        Returns ``[]`` when there is nothing to explain."""
        if source is None:
            record = self.last()
            if record is None or record.error is not None:
                return []
            source = record.source
        context = self.context()
        try:
            pe = parse(source, context)
        except ParseError:
            return []
        return self.workspace.engine.explain(
            pe,
            context,
            n=self.n,
            rank=rank,
            abstypes=self.abstypes,
            expected_type=self.expected_type,
            keyword=self.keyword,
            budget=self._make_budget(),
        )

    def complete_many(
        self, sources: List[str], parallelism: int = 1
    ) -> List[QueryRecord]:
        """Parse and complete a batch of partial expressions through
        :meth:`CompletionEngine.complete_many`, so every query shares the
        warmed indexes and the cross-query cache (and, with
        ``parallelism > 1``, a thread pool).  Records are appended to the
        history in input order; parse failures consume no engine time.
        """
        from ..engine.completer import CompletionRequest

        context = self.context()
        records = [QueryRecord(source=source) for source in sources]
        requests: List[CompletionRequest] = []
        targets: List[QueryRecord] = []
        for record in records:
            try:
                pe = parse(record.source, context)
            except ParseError as error:
                record.error = str(error)
                self._log_parse_failure(record)
                continue
            requests.append(CompletionRequest(
                pe=pe,
                context=context,
                n=self.n,
                abstypes=self.abstypes,
                expected_type=self.expected_type,
                keyword=self.keyword,
                timeout_ms=self.timeout_ms,
                max_steps=self.step_budget,
                token=self.cancellation,
                trace=self.trace or None,
            ))
            targets.append(record)
        outcomes = self.workspace.engine.complete_many(
            requests, parallelism=parallelism
        )
        for record, outcome in zip(targets, outcomes):
            self._fill_record(record, outcome)
        self.history.extend(records)
        return records

    def query_many(
        self, sources: List[str], parallelism: int = 1
    ) -> List[QueryRecord]:
        """Deprecated alias for :meth:`complete_many`."""
        warn_deprecated("CompletionSession.query_many",
                        "CompletionSession.complete_many")
        return self.complete_many(sources, parallelism=parallelism)

    def analyze(self, source: str):
        """Pre-flight a query without running it (the REPL's ``:lint``).

        Parses ``source`` in the session scope and returns a
        :class:`~repro.analysis.preflight.PreflightReport`: a parse
        failure becomes an RA022 diagnostic (with the failure's source
        span when the parser reports one), and a well-formed query gets
        the full satisfiability / dead-term analysis.
        """
        from ..analysis.diagnostics import diag
        from ..analysis.preflight import PreflightReport

        context = self.context()
        try:
            pe = parse(source, context)
        except ParseError as error:
            span = getattr(error, "span", None)
            report = PreflightReport(unsatisfiable=False)
            report.diagnostics.append(
                diag("RA022", str(error), location="query", span=span)
            )
            return report
        return self.workspace.engine.preflight(
            pe,
            context,
            expected_type=self.expected_type,
            keyword=self.keyword,
        )

    def accept(self, rank: int) -> Optional[str]:
        """Accept suggestion ``rank`` of the most recent query; returns the
        next query source with every leftover ``0`` turned into ``?`` (or
        the final source when nothing is left to fill)."""
        if not self.history or not self.history[-1].suggestions:
            return None
        suggestions = self.history[-1].suggestions
        if not 1 <= rank <= len(suggestions):
            return None
        chosen = suggestions[rank - 1].expr
        refined = holes_for_unfilled(chosen)
        return to_source(refined)

    def last(self) -> Optional[QueryRecord]:
        return self.history[-1] if self.history else None

    def auto_complete(
        self, source: str, max_iterations: int = 5
    ) -> Optional[str]:
        """Drive the paper's Figure 1 workflow to a fixpoint: query, take
        the top suggestion, turn its leftover ``0``s into ``?``s, and
        re-query until the top suggestion is fully concrete.

        Returns the final expression source, or ``None`` when a query
        fails or the loop does not converge within ``max_iterations``.
        ``self.auto_status`` records *why* it stopped (parse error, empty
        result list, or non-convergence), so callers can distinguish the
        ``None`` cases.
        """
        from ..lang.ast import iter_subtree

        current = source
        for _ in range(max_iterations):
            record = self.complete(current)
            if record.error is not None:
                self.auto_status = AutoCompleteStatus.PARSE_ERROR
                return None
            if not record.suggestions:
                self.auto_status = AutoCompleteStatus.NO_SUGGESTIONS
                return None
            top = record.suggestions[0].expr
            if not any(isinstance(n, Unfilled) for n in iter_subtree(top)):
                self.auto_status = AutoCompleteStatus.CONVERGED
                return to_source(top)
            current = to_source(holes_for_unfilled(top))
        self.auto_status = AutoCompleteStatus.NO_CONVERGENCE
        return None
