"""A terminal REPL for partial-expression queries.

Run:  python -m repro repl --universe paint

Commands (everything else is treated as a partial expression)::

    :let <name> <Type>     declare a local
    :this <Type>|none      set / clear the type of `this`
    :expect <Type>|void|none  constrain the result type (Fig. 12 mode)
    :keyword <word>|none   filter unknown-call methods by name
    :n <count>             result list size
    :timeout <ms>|none     per-query wall-clock deadline (best-effort)
    :budget <steps>|none   per-query expansion-step budget
    :locals                show the scope
    :accept <rank>         accept a suggestion; 0s become ?s
    :explain <rank>        show the ranking-term breakdown of a suggestion
                           (terms sum exactly to the score)
    :trace [on|off|show]   per-query span tracing: toggle it, or show
                           the last query's span tree
                           (docs/OBSERVABILITY.md)
    :stats                 engine metrics: query/cache/truncation
                           counters and step/latency histograms
    :profile [flame]       aggregate self-time profile over every traced
                           query this session (:trace on first); with
                           'flame', print collapsed-stack lines instead
                           (docs/OBSERVABILITY.md)
    :lint [pe]             diagnostics: without arguments, lint the
                           universe (RA0xx + RA1xx codes,
                           docs/ANALYSIS.md); with a partial
                           expression, pre-flight it (satisfiability,
                           dead ranking terms)
    :impact <Type>...      what would editing these types invalidate?
                           reverse-dependency closure, root pools, and
                           live cache blast radius (docs/ANALYSIS.md)
    :cache [clear|on|off]  cross-query cache: show hit/miss counters
                           with invalidation attribution, clear it, or
                           toggle it (docs/PERFORMANCE.md)
    :bench <pe>            time a query cold vs. warm against the
                           cross-query cache (5 repeats)
    :fuzz [iters] [seed]   rank-stability fuzzing against this universe:
                           seeded semantic-preserving transformations +
                           differential oracles (docs/FUZZING.md);
                           default 10 iterations, seed 0
    :types [prefix]        browse the universe's namespaces and types
    :tree <Type>           one type's hierarchy and members
    :load <file.cs>        read a C#-subset source file as the universe
    :impls                 list method bodies of the loaded project
    :enter <MethodName>    query from inside a method body (scope +
                           abstract types of that body)
    :help                  this text
    :quit                  leave
"""

from __future__ import annotations

from typing import Callable, Iterable

from .session import CompletionSession
from .workspace import Workspace

_HELP = __doc__.split("Commands", 1)[1]


class _ReplState:
    """Mutable REPL state: the session may be replaced by :load / :enter."""

    def __init__(self, workspace: Workspace) -> None:
        self.session = CompletionSession(workspace)


def run_repl(
    workspace: Workspace,
    lines: Iterable[str],
    write: Callable[[str], None],
) -> CompletionSession:
    """Drive a session from an iterable of input lines (testable core).

    Returns the final session so callers can inspect the state.
    """
    state = _ReplState(workspace)
    write("partial-expression REPL — universe '{}'; :help for commands".format(
        workspace.name))
    for raw in lines:
        line = raw.strip()
        if not line:
            continue
        if line.startswith(":"):
            if not _command(state, line, write):
                break
            continue
        _query(state.session, line, write)
    return state.session


def _command(state: "_ReplState", line: str, write) -> bool:
    session = state.session
    parts = line.split()
    command, args = parts[0], parts[1:]
    try:
        if command == ":quit":
            write("bye")
            return False
        if command == ":help":
            write("Commands" + _HELP)
        elif command == ":lint":
            _lint(session, line.split(None, 1)[1] if args else None, write)
        elif command == ":impact" and args:
            _impact(session, args, write)
        elif command == ":cache" and len(args) <= 1:
            _cache(session, args[0] if args else None, write)
        elif command == ":bench" and args:
            _bench(session, line.split(None, 1)[1], write)
        elif command == ":fuzz" and len(args) <= 2:
            _fuzz(session, args, write)
        elif command == ":types" and len(args) <= 1:
            from ..codemodel.explorer import namespace_tree

            write(namespace_tree(session.workspace.ts,
                                 args[0] if args else None))
        elif command == ":tree" and len(args) == 1:
            from ..codemodel.explorer import type_tree

            typedef = session.workspace.resolve_type(args[0])
            write(type_tree(session.workspace.ts, typedef))
        elif command == ":load" and len(args) == 1:
            _load(state, args[0], write)
        elif command == ":impls":
            impls = session.workspace.impls()
            if not impls:
                write("(no method bodies; :load a source file first)")
            for impl in impls:
                write("  {}".format(impl.method.full_name))
        elif command == ":enter" and len(args) == 1:
            _enter(state, args[0], write)
        elif command == ":let" and len(args) == 2:
            typedef = session.declare(args[0], args[1])
            write("local {}: {}".format(args[0], typedef.full_name))
        elif command == ":this" and len(args) == 1:
            typedef = session.set_this(None if args[0] == "none" else args[0])
            write("this: {}".format(typedef.full_name if typedef else "none"))
        elif command == ":expect" and len(args) == 1:
            typedef = session.set_expected(
                None if args[0] == "none" else args[0])
            write("expect: {}".format(typedef.full_name if typedef else "none"))
        elif command == ":keyword" and len(args) == 1:
            session.keyword = None if args[0] == "none" else args[0]
            write("keyword: {}".format(session.keyword or "none"))
        elif command == ":n" and len(args) == 1:
            session.n = max(1, int(args[0]))
            write("showing top {}".format(session.n))
        elif command == ":timeout" and len(args) == 1:
            session.timeout_ms = (
                None if args[0] == "none" else max(1.0, float(args[0]))
            )
            write("timeout: {}".format(
                "none" if session.timeout_ms is None
                else "{:.0f} ms".format(session.timeout_ms)))
        elif command == ":budget" and len(args) == 1:
            session.step_budget = (
                None if args[0] == "none" else max(1, int(args[0]))
            )
            write("budget: {}".format(session.step_budget or "none"))
        elif command == ":locals":
            if not session.locals and session.this_type is None:
                write("(empty scope)")
            for name, typedef in session.locals.items():
                write("  {}: {}".format(name, typedef.full_name))
            if session.this_type is not None:
                write("  this: {}".format(session.this_type.full_name))
        elif command == ":explain" and len(args) == 1:
            _explain(session, int(args[0]), write)
        elif command == ":trace" and len(args) <= 1:
            _trace(session, args[0] if args else None, write)
        elif command == ":stats":
            _stats(session, write)
        elif command == ":profile" and len(args) <= 1:
            _profile(session, args[0] if args else None, write)
        elif command == ":accept" and len(args) == 1:
            refined = session.accept(int(args[0]))
            if refined is None:
                write("nothing to accept")
            else:
                write("next query: {}".format(refined))
                _query(session, refined, write)
        else:
            write("unrecognised command; :help lists commands")
    except (OSError, ValueError, KeyError) as error:
        write("error: {}".format(error))
    return True


def _load(state: "_ReplState", path: str, write) -> None:
    from ..frontend import SourceReader

    with open(path) as handle:
        source = handle.read()
    project = SourceReader.read(source, project_name=path)
    workspace = Workspace.corpus_project(project)
    previous_n = state.session.n
    state.session = CompletionSession(workspace, n=previous_n)
    write("loaded {}: {} types, {} method bodies".format(
        path, len(project.ts.all_types()), len(project.impls)))


def _enter(state: "_ReplState", method_name: str, write) -> None:
    workspace = state.session.workspace
    matches = [
        impl
        for impl in workspace.impls()
        if impl.method.name == method_name
        or impl.method.full_name == method_name
    ]
    if not matches:
        write("no method body named {!r}".format(method_name))
        return
    impl = matches[0]
    context = impl.context(workspace.ts)
    state.session = CompletionSession(
        workspace,
        locals=dict(context.locals),
        this_type=context.this_type,
        n=state.session.n,
        abstypes=workspace.oracle_for(impl),
    )
    write("entered {}; locals: {}".format(
        impl.method.full_name,
        ", ".join(sorted(context.locals)) or "(none)",
    ))


def _lint(session: CompletionSession, query, write) -> None:
    if query is None:
        diagnostics = session.workspace.lint()
    else:
        diagnostics = session.analyze(query).diagnostics
    for diagnostic in diagnostics:
        write(diagnostic.render())
    if not diagnostics:
        write("(no findings)")


def _cache(session: CompletionSession, action, write) -> None:
    workspace = session.workspace
    if action == "clear":
        if workspace.engine.cache is not None:
            workspace.engine.cache.clear()
        write("cache cleared")
        return
    if action in ("on", "off"):
        workspace.cache_enabled = action == "on"
        write("cache {}".format(action))
        return
    if action is not None:
        write("usage: :cache [clear|on|off]")
        return
    stats = workspace.cache_stats()
    if stats is None or not workspace.engine.config.enable_cache:
        write("cache off")
        return
    write("cross-query cache: {:.0f} streams, {:.0f} root pools, "
          "{:.0f} placements".format(
              stats["streams"], stats["root_pools"], stats["placements"]))
    write("  hits {} / misses {}  (hit rate {:.1%})".format(
        int(stats["hits"]), int(stats["misses"]), stats["hit_rate"]))
    write("  invalidations {} ({} coarse, {} fine)  evictions {}".format(
        int(stats["invalidations"]), int(stats["invalidations_coarse"]),
        int(stats["invalidations_fine"]), int(stats["evictions"])))
    if stats["invalidations_fine"]:
        write("  fine invalidation: {} entries preserved, {} dropped".format(
            int(stats["entries_preserved"]), int(stats["entries_dropped"])))


def _impact(session: CompletionSession, names, write) -> None:
    workspace = session.workspace
    full_names = [workspace.resolve_type(name).full_name for name in names]
    for line in workspace.impact(full_names).render():
        write(line)


def _bench(session: CompletionSession, source: str, write,
           repeats: int = 5) -> None:
    import time as _time

    from ..lang.parser import ParseError, parse

    context = session.context()
    try:
        pe = parse(source, context)
    except ParseError as error:
        write("parse error: {}".format(error))
        return
    engine = session.workspace.engine
    timings = []
    for _ in range(repeats):
        started = _time.perf_counter()
        outcome = engine.complete_query(
            pe, context, n=session.n, abstypes=session.abstypes,
            expected_type=session.expected_type, keyword=session.keyword,
        )
        timings.append((_time.perf_counter() - started) * 1000.0)
    write("cold {:.2f} ms, warm best {:.2f} ms over {} runs "
          "({} completions; last run {})".format(
              timings[0], min(timings[1:]) if len(timings) > 1 else timings[0],
              repeats, len(outcome.completions),
              "cached" if outcome.cached else "uncached"))
    stats = session.workspace.cache_stats()
    if stats is not None and session.workspace.engine.config.enable_cache:
        write("cache hit rate {:.1%}".format(stats["hit_rate"]))


#: REPL workspace names of the builtin universes -> fuzzable keys
_FUZZ_UNIVERSES = {"paintdotnet": "paint", "geometry": "geometry",
                   "mini-bcl": "bcl"}


def _fuzz(session: CompletionSession, args, write) -> None:
    from ..fuzz import FuzzConfig, run_fuzz
    from ..fuzz.harness import render_report

    try:
        iterations = int(args[0]) if len(args) >= 1 else 10
        seed = int(args[1]) if len(args) >= 2 else 0
    except ValueError:
        write("usage: :fuzz [iterations] [seed]")
        return
    if iterations <= 0:
        write("usage: :fuzz [iterations] [seed] (iterations > 0)")
        return
    universe = _FUZZ_UNIVERSES.get(session.workspace.name)
    config = FuzzConfig(
        seed=seed, iterations=iterations,
        universes=(universe,) if universe else ("paint", "geometry", "bcl"),
    )
    if universe is None:
        write("(universe {!r} is not a builtin; fuzzing the builtin "
              "universes instead)".format(session.workspace.name))
    for line in render_report(run_fuzz(config, write=write)):
        write(line)


def _explain(session: CompletionSession, rank: int, write) -> None:
    from ..lang.printer import to_source

    explained = session.explain(rank=rank)
    if not explained:
        record = session.last()
        if record is None or not record.suggestions:
            write("nothing to explain; run a query first")
        else:
            write("no suggestion at rank {}".format(rank))
        return
    completion = explained[0]
    breakdown = completion.breakdown
    write("{}  (total score {}{})".format(
        to_source(completion.expr), breakdown.total,
        ", cache replay" if breakdown.cached else ""))
    for feature, value in breakdown.rows():
        write("  {:<16s} {:>3d}".format(feature, value))


def _trace(session: CompletionSession, action, write) -> None:
    if action in ("on", "off"):
        session.trace = action == "on"
        write("trace {}".format(action))
        return
    if action not in (None, "show"):
        write("usage: :trace [on|off|show]")
        return
    if action is None:
        write("trace {}".format("on" if session.trace else "off"))
        return
    record = session.last()
    if record is None or record.trace is None:
        write("no trace recorded; :trace on, then run a query")
        return
    by_id = {span["span"]: span for span in record.trace}

    def depth(span) -> int:
        count = 0
        parent = span["parent"]
        while parent is not None:
            count += 1
            parent = by_id[parent]["parent"]
        return count

    for span in record.trace:
        duration = span["duration_ms"]
        counters = ", ".join(
            "{}={:g}".format(key, value)
            for key, value in span["counters"].items())
        write("{}{} {}{}".format(
            "  " * depth(span), span["name"],
            "{:.2f} ms".format(duration) if duration is not None else "open",
            "  [{}]".format(counters) if counters else ""))


def _profile(session: CompletionSession, action, write) -> None:
    if action not in (None, "flame"):
        write("usage: :profile [flame]")
        return
    from ..obs.profile import Profile

    profile = Profile()
    for record in session.history:
        if record.trace is not None:
            profile.add_trace(record.trace)
    if profile.traces == 0:
        write("no traced queries; :trace on, then run queries")
        return
    if action == "flame":
        for line in profile.to_collapsed():
            write(line)
        return
    for line in profile.render():
        write(line)


def _stats(session: CompletionSession, write) -> None:
    data = session.workspace.metrics()
    counters, histograms = data["counters"], data["histograms"]
    if not counters and not histograms:
        write("(no queries recorded)")
        return
    for name, value in counters.items():
        write("  {:<28s} {}".format(name, value))
    for name, histogram in histograms.items():
        write("  {:<28s} n={} mean={:.1f} min={:g} max={:g}".format(
            name, histogram["count"], histogram["mean"],
            histogram["min"], histogram["max"]))


def _query(session: CompletionSession, line: str, write) -> None:
    record = session.complete(line)
    if record.error is not None:
        write("parse error: {}".format(record.error))
        return
    for suggestion in record.suggestions:
        write("{:>3}. (score {:>3}) {}".format(
            suggestion.rank, suggestion.score, suggestion.text))
    if not record.suggestions:
        write("(no completions)")
    if record.truncated is not None:
        write("(truncated: {} after {:.0f} ms — results are best-so-far)"
              .format(record.truncated, record.elapsed_ms or 0.0))
    if record.degraded:
        write("(degraded features: {})".format(
            ", ".join(sorted(record.degraded))))
    if record.cached:
        write("(replayed from the cross-query cache)")


def main(universe: str = "paint") -> None:  # pragma: no cover - interactive
    import sys

    workspace = Workspace.builtin(universe)

    def stdin_lines():
        while True:
            try:
                yield input("pe> ")
            except EOFError:
                return

    run_repl(workspace, stdin_lines(), lambda text: print(text))
    sys.exit(0)
