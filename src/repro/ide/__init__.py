"""Interactive layer: workspaces, sessions, REPL (the paper's future work)."""

from .repl import run_repl
from .session import (
    AutoCompleteStatus,
    CompletionSession,
    QueryRecord,
    Suggestion,
    holes_for_unfilled,
)
from .workspace import Workspace

__all__ = [
    "AutoCompleteStatus",
    "CompletionSession",
    "QueryRecord",
    "Suggestion",
    "Workspace",
    "holes_for_unfilled",
    "run_repl",
]
