"""Workspaces: named universes an interactive session can work against.

The paper leaves IDE integration to future work; this layer is the
library-level substrate an IDE plugin (or our REPL) would sit on — it owns
the long-lived state: the type system, the completion engine with its
indexes, and (for corpus projects) the abstract-type analysis.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..analysis.abstract_types import AbstractTypeAnalysis
from ..analysis.diagnostics import Diagnostic
from ..analysis.scope import Context
from ..codemodel.types import TypeDef
from ..codemodel.typesystem import TypeSystem
from ..corpus.oracle import ImplAbstractTypes
from ..corpus.program import MethodImpl, Project
from ..deprecation import warn_deprecated
from ..engine.completer import CompletionEngine, EngineConfig
from ..engine.ranking import AbstractTypeOracle


class Workspace:
    """A universe plus the engine and analyses built over it.

    ``cache_enabled`` (constructor argument and read/write property) is
    the one switch for cross-query caching; it subsumes the deprecated
    :meth:`set_cache_enabled`.
    """

    def __init__(
        self,
        ts: TypeSystem,
        name: str = "workspace",
        config: Optional[EngineConfig] = None,
        project: Optional[Project] = None,
        cache_enabled: Optional[bool] = None,
        engine: Optional[CompletionEngine] = None,
    ) -> None:
        self.name = name
        self.ts = ts
        if engine is not None:
            # a pre-built engine (e.g. restored from a pack by
            # :mod:`repro.pack`) carries its own config; ``config`` is
            # ignored, ``cache_enabled`` still applies via the property
            self.engine = engine
        else:
            if cache_enabled is not None:
                from dataclasses import replace

                config = replace(config or EngineConfig(),
                                 enable_cache=cache_enabled)
            self.engine = CompletionEngine(ts, config)
        self.project = project
        self._analysis: Optional[AbstractTypeAnalysis] = None
        if engine is not None and cache_enabled is not None:
            self.cache_enabled = cache_enabled

    # ------------------------------------------------------------------
    # constructors for the bundled universes
    # ------------------------------------------------------------------
    @classmethod
    def paintdotnet(cls, config: Optional[EngineConfig] = None) -> "Workspace":
        """Deprecated: use ``Workspace.builtin("paint")`` (or
        :func:`repro.api.open_workspace`)."""
        warn_deprecated("Workspace.paintdotnet()",
                        'Workspace.builtin("paint")')
        return cls.builtin("paint", config)

    @classmethod
    def geometry(cls, config: Optional[EngineConfig] = None) -> "Workspace":
        """Deprecated: use ``Workspace.builtin("geometry")`` (or
        :func:`repro.api.open_workspace`)."""
        warn_deprecated("Workspace.geometry()",
                        'Workspace.builtin("geometry")')
        return cls.builtin("geometry", config)

    @classmethod
    def mini_bcl(cls, config: Optional[EngineConfig] = None) -> "Workspace":
        """Deprecated: use ``Workspace.builtin("bcl")`` (or
        :func:`repro.api.open_workspace`)."""
        warn_deprecated("Workspace.mini_bcl()", 'Workspace.builtin("bcl")')
        return cls.builtin("bcl", config)

    @classmethod
    def corpus_project(
        cls, project: Project, config: Optional[EngineConfig] = None
    ) -> "Workspace":
        return cls(project.ts, name=project.name, config=config,
                   project=project)

    #: registry used by the CLI's ``--universe`` flag (key -> the
    #: historical constructor name; kept for compatibility — resolution
    #: goes through the builder table below, not ``getattr``)
    BUILTIN: Dict[str, str] = {
        "paint": "paintdotnet",
        "geometry": "geometry",
        "bcl": "mini_bcl",
    }

    #: key -> (workspace name, corpus builder name)
    _BUILTIN_BUILDERS: Dict[str, tuple] = {
        "paint": ("paintdotnet", "build_paintdotnet"),
        "geometry": ("geometry", "build_geometry"),
        "bcl": ("mini-bcl", "build_system_core"),
    }

    @classmethod
    def builtin(cls, key: str, config: Optional[EngineConfig] = None) -> "Workspace":
        try:
            name, builder_name = cls._BUILTIN_BUILDERS[key]
        except KeyError:
            raise ValueError(
                "unknown universe {!r}; pick one of {}".format(
                    key, ", ".join(sorted(cls.BUILTIN))
                )
            )
        from ..corpus import frameworks

        ts = TypeSystem()
        getattr(frameworks, builder_name)(ts)
        return cls(ts, name=name, config=config)

    # ------------------------------------------------------------------
    # type / context helpers
    # ------------------------------------------------------------------
    def resolve_type(self, name: str) -> TypeDef:
        """Resolve a type by full name, unique simple name, or primitive
        keyword."""
        direct = self.ts.try_get(name)
        if direct is not None:
            return direct
        try:
            return self.ts.primitive(name)
        except KeyError:
            pass
        matches = [t for t in self.ts.all_types() if t.name == name]
        if len(matches) == 1:
            return matches[0]
        if not matches:
            raise ValueError("unknown type {!r}".format(name))
        raise ValueError(
            "ambiguous type {!r}: {}".format(
                name, ", ".join(t.full_name for t in matches)
            )
        )

    def context(
        self,
        locals: Optional[Dict[str, TypeDef]] = None,
        this_type: Optional[TypeDef] = None,
    ) -> Context:
        return Context(self.ts, locals=locals, this_type=this_type)

    # ------------------------------------------------------------------
    # batched queries and the cross-query cache
    # ------------------------------------------------------------------
    def complete_many(self, requests, parallelism: int = 1):
        """Run a batch of :class:`~repro.engine.completer.CompletionRequest`
        objects against this workspace's engine — indexes are warmed once
        and every query in the batch shares the cross-query cache."""
        return self.engine.complete_many(requests, parallelism=parallelism)

    def cache_stats(self) -> Optional[dict]:
        """Hit/miss counters of the engine's cross-query cache, or
        ``None`` when it is disabled."""
        return self.engine.cache_stats()

    @property
    def cache_enabled(self) -> bool:
        """Whether cross-query caching is live (the REPL's
        ``:cache on/off``).

        Disabling both stops new lookups *and* clears the current
        entries, so re-enabling starts from a cold, trustworthy cache.
        """
        return (
            self.engine.config.enable_cache and self.engine.cache is not None
        )

    @cache_enabled.setter
    def cache_enabled(self, enabled: bool) -> None:
        self.engine.config.enable_cache = enabled
        if enabled and self.engine.cache is None:
            from ..engine.cache import CompletionCache

            self.engine.cache = CompletionCache(
                fine=self.engine.config.fine_invalidation)
        if not enabled and self.engine.cache is not None:
            self.engine.cache.clear()

    def set_cache_enabled(self, enabled: bool) -> None:
        """Deprecated: assign :attr:`cache_enabled` instead."""
        warn_deprecated("Workspace.set_cache_enabled",
                        "the Workspace.cache_enabled property")
        self.cache_enabled = enabled

    def metrics(self) -> dict:
        """JSON-ready snapshot of the engine's observability registry
        (``repro stats`` and the REPL's ``:stats``)."""
        return self.engine.metrics.to_dict()

    # ------------------------------------------------------------------
    # structured run logging
    # ------------------------------------------------------------------
    @property
    def run_log(self):
        """The engine's attached :class:`~repro.obs.runlog.RunLog`, or
        ``None``.  While attached, every query this workspace answers
        appends a structured NDJSON record (docs/OBSERVABILITY.md)."""
        return self.engine.run_log

    @run_log.setter
    def run_log(self, log) -> None:
        self.engine.run_log = log

    def start_run_log(self, label: Optional[str] = None,
                      seed: Optional[int] = None):
        """Attach a fresh run log whose manifest records this
        workspace's provenance — engine config signature, universe
        version, git SHA — and return it.  Detach with
        ``workspace.run_log = None``."""
        from ..obs.runlog import RunLog, signature_hex

        log = RunLog(
            label or self.name,
            config_signature=signature_hex(self.engine._config_signature()),
            universes={self.name: self.ts.version},
            seed=seed,
        )
        self.engine.run_log = log
        return log

    # ------------------------------------------------------------------
    # diagnostics and impact queries
    # ------------------------------------------------------------------
    def lint(self, sanitize: bool = False) -> List[Diagnostic]:
        """Static diagnostics for this workspace's universe.

        Runs the code-model lint (``RA00x``) against the live engine's
        method index (so index staleness is caught, not masked by a fresh
        rebuild), then the dependency-analysis lint (``RA10x``: god
        types, cycles outside the subtype lattice, cache blast radius,
        fingerprint drift) against the engine's dependency graph and
        live cache; with ``sanitize=True`` also runs the
        stream-invariant probe queries (``RA030``).  See
        ``docs/ANALYSIS.md``.
        """
        from ..analysis.codemodel_lint import lint_type_system
        from ..analysis.deps import lint_dependencies
        from ..analysis.sanitize import run_sanitizer_probes

        diagnostics = lint_type_system(
            self.ts, index=self.engine.index, project=self.project
        )
        diagnostics = diagnostics + lint_dependencies(
            self.ts, graph=self.engine.dependency_graph(),
            cache=self.engine.cache, project=self.project,
        )
        if sanitize:
            diagnostics = diagnostics + run_sanitizer_probes(self.engine)
        return diagnostics

    def impact(self, type_names):
        """Answer "which completion state can editing these types touch?"
        — an :class:`~repro.analysis.deps.ImpactReport` over the engine's
        dependency graph and live cache (``repro impact`` and the REPL's
        ``:impact``)."""
        return self.engine.impact(type_names)

    # ------------------------------------------------------------------
    # abstract types (when a corpus project backs the workspace)
    # ------------------------------------------------------------------
    def analysis(self) -> Optional[AbstractTypeAnalysis]:
        if self.project is None:
            return None
        if self._analysis is None:
            self._analysis = AbstractTypeAnalysis(self.project)
        return self._analysis

    def oracle_for(self, impl: MethodImpl) -> Optional[AbstractTypeOracle]:
        analysis = self.analysis()
        if analysis is None:
            return None
        return ImplAbstractTypes(analysis, impl)

    def impls(self) -> List[MethodImpl]:
        if self.project is None:
            return []
        return list(self.project.impls)
