"""The single public facade of the ``repro`` package.

Everything a library consumer needs is importable from here (and
re-exported by ``repro`` itself): the six task-level functions —

* :func:`open_workspace` — a universe plus its engine,
* :func:`complete` / :func:`complete_many` — run queries,
* :func:`explain` — ranking attribution for a query,
* :func:`lint` — static diagnostics,
* :func:`impact` — "what would editing these types invalidate?",
* :func:`bench` — the pinned performance workload,
* :func:`profile` — deterministic self-time profile of traced queries,
* :func:`diff_runs` — phase-level latency attribution between two runs,

plus the stable types behind them (engine, language, analysis,
observability).  Deeper modules (``repro.engine``, ``repro.obs``, …)
remain importable but are internal layering; new code should depend on
this surface.

Quickstart::

    from repro import open_workspace, complete, explain

    workspace = open_workspace("paint")
    record = complete(workspace, "?({img, size})",
                      locals={"img": "PaintDotNet.Document",
                              "size": "System.Drawing.Size"})
    for suggestion in record.suggestions:
        print(suggestion.rank, suggestion.score, suggestion.text)
    for completion in explain(workspace, "?({img, size})",
                              locals={"img": "PaintDotNet.Document",
                                      "size": "System.Drawing.Size"}):
        print(completion.breakdown.rows())
"""

from __future__ import annotations

from typing import Dict, List, Optional, Union

from .analysis.abstract_types import AbstractTypeAnalysis
from .analysis.deps import (
    DependencyGraph,
    ImpactReport,
    QueryFootprint,
    expand_mutations,
    footprint_seeds,
    lint_dependencies,
    method_param_types,
)
from .analysis.diagnostics import Diagnostic, Severity
from .analysis.codemodel_lint import lint_type_system
from .analysis.preflight import PreflightReport, preflight_query
from .analysis.sanitize import run_sanitizer_probes
from .analysis.scope import Context
from .codemodel import (
    Field,
    LibraryBuilder,
    Method,
    Parameter,
    Property,
    TypeDef,
    TypeKind,
    TypeSystem,
)
from .engine import (
    CacheStats,
    CancellationToken,
    Completion,
    CompletionCache,
    CompletionEngine,
    CompletionRequest,
    EngineConfig,
    MethodIndex,
    QueryBudget,
    QueryOutcome,
    QueryStatus,
    Ranker,
    RankingConfig,
    ReachabilityIndex,
    check_stream,
    sanitize_streams,
    sanitizer_active,
)
from .errors import (
    BudgetExhausted,
    CompletionError,
    CorpusError,
    FeatureUnavailable,
    PackCorruptError,
    PackError,
    PackStaleError,
    QueryCancelled,
    QueryTimeout,
    StreamInvariantViolation,
)
from .ide.session import (
    AutoCompleteStatus,
    CompletionSession,
    QueryRecord,
    Suggestion,
)
from .ide.workspace import Workspace
from .lang import (
    Assign,
    Call,
    Compare,
    Expr,
    FieldAccess,
    Hole,
    KnownCall,
    Literal,
    ParseError,
    PartialAssign,
    PartialCompare,
    SuffixHole,
    TypeLiteral,
    Unfilled,
    UnknownCall,
    Var,
    derivable,
    parse,
    to_source,
    well_typed,
)
from .obs import (
    Histogram,
    Metrics,
    NullTracer,
    NULL_TRACER,
    PhaseDelta,
    Profile,
    RunDiff,
    RunLog,
    ScoreBreakdown,
    Span,
    Tracer,
    diff_runs,
    load_run_artifact,
    ndjson_to_dicts,
    profile_run_log,
    read_run_log,
    render_markdown,
    trace_to_ndjson,
    validate_runlog_text,
    validate_trace_text,
)

#: accepted ``locals`` values: resolved types or names to resolve
_TypeRef = Union[str, TypeDef]


def _sniff_format(path: str) -> Optional[str]:
    """The ``"format"`` value of a JSON artifact file, read from its
    first few KB (works for both one-document files and the two-line
    pack layout)."""
    import re

    try:
        with open(path, "r", encoding="utf-8", errors="replace") as handle:
            head = handle.read(4096)
    except OSError:
        return None
    match = re.search(r'"format"\s*:\s*"([a-z0-9_-]+)"', head)
    return match.group(1) if match else None


def open_workspace(
    source: Union[str, TypeSystem, None] = None,
    config: Optional[EngineConfig] = None,
    cache_enabled: Optional[bool] = None,
    *,
    expect_fingerprint: Optional[str] = None,
    universe: Union[str, TypeSystem, None] = None,
) -> Workspace:
    """The one constructor: a :class:`Workspace` from any universe
    source.

    ``source`` may be:

    * a builtin universe key — ``"paint"``, ``"geometry"``, ``"bcl"``;
    * an already-built :class:`TypeSystem`;
    * a path to a ``repro-universe`` document (``repro dump-universe``);
    * a path to a ``repro-project`` document (a serialized corpus
      project — the workspace carries the project and its analyses);
    * a path to a ``repro-pack`` artifact (:mod:`repro.pack`), restored
      without rebuilding indexes — the millisecond cold-start path.

    ``expect_fingerprint`` pins the universe content hash: the call
    raises :class:`~repro.errors.PackStaleError` when the opened
    universe's :meth:`~TypeSystem.fingerprint` disagrees.  The
    ``universe=`` keyword is the deprecated name for ``source``.
    """
    if universe is not None:
        from .deprecation import warn_deprecated

        warn_deprecated("open_workspace(universe=...)",
                        "open_workspace(source)")
        if source is None:
            source = universe
    if source is None:
        raise TypeError("open_workspace() needs a source: a builtin key, "
                        "a TypeSystem, or an artifact path")
    if isinstance(source, TypeSystem):
        workspace = Workspace(source, config=config,
                              cache_enabled=cache_enabled)
    elif source in Workspace.BUILTIN:
        workspace = Workspace.builtin(source, config)
        if cache_enabled is not None:
            workspace.cache_enabled = cache_enabled
    else:
        import os

        if not os.path.exists(source):
            raise ValueError(
                "unknown universe {!r}: not a builtin key ({}) and no such "
                "file".format(source, ", ".join(sorted(Workspace.BUILTIN))))
        kind = _sniff_format(source)
        if kind == "repro-pack":
            from .pack import load_pack as _load_pack

            return _load_pack(source, config=config,
                              cache_enabled=cache_enabled,
                              expect_fingerprint=expect_fingerprint)
        if kind == "repro-project":
            from .serialize import open_project

            workspace = Workspace.corpus_project(open_project(source), config)
            if cache_enabled is not None:
                workspace.cache_enabled = cache_enabled
        elif kind == "repro-universe":
            import json

            from .serialize import load_type_system

            with open(source, "r", encoding="utf-8") as handle:
                ts = load_type_system(json.load(handle))
            name = os.path.splitext(os.path.basename(source))[0]
            workspace = Workspace(ts, name=name, config=config,
                                  cache_enabled=cache_enabled)
        else:
            raise ValueError(
                "{!r} is not a recognised artifact: expected a repro-pack, "
                "repro-universe, or repro-project document".format(source))
    if expect_fingerprint is not None:
        actual = workspace.ts.fingerprint()
        if actual != expect_fingerprint:
            from .errors import PackStaleError

            raise PackStaleError(
                "universe fingerprint mismatch: caller expects {} but "
                "{!r} hashes to {}".format(
                    expect_fingerprint,
                    source if isinstance(source, str) else workspace.name,
                    actual),
                expected=expect_fingerprint, actual=actual)
    return workspace


def build_pack(
    source: Union[str, TypeSystem, Workspace],
    path: str,
    config: Optional[EngineConfig] = None,
) -> dict:
    """Snapshot a universe source (anything :func:`open_workspace`
    accepts, or an existing :class:`Workspace`) into a pack artifact at
    ``path``; returns the pack header (format, checksum, meta).  See
    ``docs/ARTIFACTS.md``."""
    from .pack import build_pack as _build_pack

    workspace = (source if isinstance(source, Workspace)
                 else open_workspace(source, config=config))
    return _build_pack(workspace, path)


def load_pack(
    path: str,
    config: Optional[EngineConfig] = None,
    cache_enabled: Optional[bool] = None,
    expect_fingerprint: Optional[str] = None,
) -> Workspace:
    """Open a pack artifact as a ready :class:`Workspace` (checksum- and
    fingerprint-verified; raises
    :class:`~repro.errors.PackCorruptError` /
    :class:`~repro.errors.PackStaleError`).  Equivalent to
    :func:`open_workspace` on the path, spelled explicitly."""
    from .pack import load_pack as _load_pack

    return _load_pack(path, config=config, cache_enabled=cache_enabled,
                      expect_fingerprint=expect_fingerprint)


def _session(
    workspace: Workspace,
    locals: Optional[Dict[str, _TypeRef]] = None,
    this: Optional[_TypeRef] = None,
    n: int = 10,
    expected: Optional[str] = None,
    keyword: Optional[str] = None,
    timeout_ms: Optional[float] = None,
    max_steps: Optional[int] = None,
    trace: bool = False,
) -> CompletionSession:
    session = CompletionSession(workspace, n=n)
    for name, type_ref in (locals or {}).items():
        if isinstance(type_ref, str):
            session.declare(name, type_ref)
        else:
            session.locals[name] = type_ref
    if this is not None:
        if isinstance(this, str):
            session.set_this(this)
        else:
            session.this_type = this
    if expected is not None:
        session.set_expected(expected)
    session.keyword = keyword
    session.timeout_ms = timeout_ms
    session.step_budget = max_steps
    session.trace = trace
    return session


def complete(
    workspace: Workspace, source: str, **scope
) -> QueryRecord:
    """Parse and complete one partial expression.

    ``scope`` keywords: ``locals`` (name → type name or
    :class:`TypeDef`), ``this``, ``n``, ``expected``, ``keyword``,
    ``timeout_ms``, ``max_steps``, ``trace``.  Returns the session's
    :class:`QueryRecord` (ranked suggestions plus status / timing /
    trace metadata); repeated calls against one workspace share its
    engine's warm indexes and cross-query cache.
    """
    return _session(workspace, **scope).complete(source)


def complete_many(
    workspace: Workspace,
    sources: List[str],
    parallelism: int = 1,
    **scope,
) -> List[QueryRecord]:
    """Complete a batch of partial expressions under one shared scope
    (same keywords as :func:`complete`); indexes warm once and the
    queries share the cross-query cache."""
    session = _session(workspace, **scope)
    return session.complete_many(sources, parallelism=parallelism)


def explain(
    workspace: Workspace,
    source: str,
    rank: Optional[int] = None,
    **scope,
) -> List[Completion]:
    """Ranking attribution for one query (same keywords as
    :func:`complete`): the top completions, each carrying a
    :class:`ScoreBreakdown` whose per-term contributions sum exactly to
    its score.  ``rank`` narrows the list to one 1-based entry."""
    return _session(workspace, **scope).explain(rank=rank, source=source)


def lint(
    workspace: Workspace,
    query: Optional[str] = None,
    sanitize: bool = False,
    **scope,
) -> List[Diagnostic]:
    """Static diagnostics: the universe's code-model lint (RA00x),
    optionally the stream-sanitizer probes, and — when ``query`` is
    given — pre-flight analysis of that partial expression under
    ``scope`` (same keywords as :func:`complete`)."""
    diagnostics = workspace.lint(sanitize=sanitize)
    if query is not None:
        report = _session(workspace, **scope).analyze(query)
        diagnostics = diagnostics + list(report.diagnostics)
    return diagnostics


def impact(
    workspace: Workspace, *type_names: str
) -> ImpactReport:
    """Answer "which completion state can editing these types touch?" —
    the reverse-dependency closure over the workspace's universe
    (affected types, global root pools, indexed methods, and the live
    cache's blast radius).  Accepts full names, unique simple names, or
    primitive keywords.  See ``docs/ANALYSIS.md``."""
    full_names = [
        workspace.resolve_type(name).full_name for name in type_names
    ]
    return workspace.impact(full_names)


def bench(label: str = "api", quick: bool = True, log=None,
          run_log: Optional[RunLog] = None) -> dict:
    """Run the pinned performance workload and return the
    schema-versioned bench document (see ``docs/PERFORMANCE.md``).
    Imported lazily — the bench harness pulls in the corpus layer."""
    from .eval.bench import run_bench

    return run_bench(label=label, quick=quick,
                     log=log if log is not None else (lambda line: None),
                     run_log=run_log)


def fuzz(seed: int = 0, iterations: int = 20, chaos: bool = False,
         transforms: Optional[List[str]] = None,
         universes: Optional[List[str]] = None,
         out_dir: str = ".", log=None, run_log: Optional[RunLog] = None):
    """Run the rank-stability fuzzing harness and return its
    :class:`~repro.fuzz.harness.FuzzReport` (``report.failed``,
    ``report.records``, ``report.repro_path``).  Fully deterministic in
    ``seed``; a failing iteration is shrunk and written as a replayable
    repro file under ``out_dir``.  See ``docs/FUZZING.md``.  Imported
    lazily — the harness pulls in the corpus layer."""
    from .fuzz import FuzzConfig, run_fuzz

    config = FuzzConfig(
        seed=seed, iterations=iterations, chaos=chaos,
        transforms=transforms, out_dir=out_dir,
    )
    if universes is not None:
        config.universes = tuple(universes)
    return run_fuzz(config, write=log, run_log=run_log)


def serve(
    universes=("paint", "geometry", "bcl"),
    host: str = "127.0.0.1",
    port: int = 0,
    default_deadline_ms: Optional[float] = None,
    run_log_dir: Optional[str] = None,
    packs: Optional[List[str]] = None,
    slo: Optional[str] = None,
    fault_plan=None,
):
    """Start the completion server on a background thread and return its
    :class:`~repro.serve.server.ServerHandle` once every workspace is
    warm and the port is bound (``handle.url``; stop with
    ``handle.stop()``, which drains in-flight requests).  One warm
    engine per named workspace, per-request ``deadline_ms`` admission
    control, per-tenant metrics and run logs — see docs/SERVING.md.

    ``packs`` mounts additional tenants from pack artifacts
    (:mod:`repro.pack`): each path is verified and restored without an
    index rebuild, served under its recorded universe name — the
    millisecond warm-up path for large universes.  ``slo`` is an
    objective spec (``"p95_ms=50:error_rate=0.01"``) the server tracks
    live in ``/v1/healthz``; ``fault_plan`` (a
    :class:`~repro.serve.chaos.ChaosSpec` source) mounts
    chaos-through-serve.  Imported lazily — the serving layer pulls in
    the corpus layer."""
    from .serve import start_in_thread

    pool = None
    if packs:
        from .pack import load_pack as _load_pack
        from .serve.pool import EnginePool

        pool = EnginePool(universes)
        for pack_path in packs:
            workspace = _load_pack(pack_path)
            pool.add_workspace(workspace.name, workspace)
    return start_in_thread(
        universes, host=host, port=port,
        default_deadline_ms=default_deadline_ms, run_log_dir=run_log_dir,
        pool=pool, slo=slo, fault_plan=fault_plan,
    )


def loadtest(
    url: Optional[str] = None,
    universe: str = "paint",
    n_workers: int = 4,
    duration_s: float = 5.0,
    deadline_ms: Optional[float] = None,
    label: str = "api",
    log=None,
    run_log_dir: Optional[str] = None,
    fault_plan=None,
) -> dict:
    """Replay the universe's golden battery from ``n_workers`` threads
    against a live server (or, with ``url=None``, a spawned in-process
    one) and return the ``BENCH_serve_<label>``-shaped document —
    latency percentiles + histogram, throughput, shed rate, per-request
    correlation ids for the slowest requests (docs/SERVING.md).  With a
    spawned server, ``run_log_dir`` streams its run logs to disk and
    ``fault_plan`` mounts chaos-through-serve.  Imported lazily — the
    load generator pulls in the serving layer."""
    from .serve import run_loadgen

    return run_loadgen(
        url=url, universe=universe, n_workers=n_workers,
        duration_s=duration_s, deadline_ms=deadline_ms, label=label,
        log=log if log is not None else (lambda line: None),
        run_log_dir=run_log_dir, fault_plan=fault_plan,
    )


def slo_report(
    source,
    slo: Optional[str] = None,
    windows: Optional[List[float]] = None,
) -> dict:
    """Offline SLO evaluation over a server run log.

    ``source`` is a path to a ``serve_<name>.ndjson`` run log (or an
    iterable of already-loaded records); ``slo`` is an objective spec
    string (default :data:`~repro.obs.slo.DEFAULT_SLO_SPEC`).  Replays
    every ``server_request`` record through the same burn-rate math the
    live server uses and returns the report dict
    (docs/OBSERVABILITY.md)."""
    from .obs.slo import DEFAULT_SLO_SPEC, SLOObjectives, slo_from_run_log

    if isinstance(source, str):
        with open(source) as handle:
            records = read_run_log(handle.read())
    else:
        records = source
    if slo is None:
        objectives = SLOObjectives.from_spec(DEFAULT_SLO_SPEC)
    elif isinstance(slo, SLOObjectives):
        objectives = slo
    else:
        objectives = SLOObjectives.from_spec(slo)
    return slo_from_run_log(records, objectives, windows=windows)


def profile(
    workspace: Workspace, sources: List[str], **scope
) -> Profile:
    """Run ``sources`` traced against the workspace and return the
    aggregated :class:`Profile` (per-call-path inclusive/self time and
    counter rollups; same keywords as :func:`complete`).  Use
    ``Profile.to_collapsed()`` for flamegraph text or
    ``Profile.render()`` for a table (docs/OBSERVABILITY.md)."""
    scope["trace"] = True
    session = _session(workspace, **scope)
    result = Profile()
    for record in session.complete_many(sources):
        if record.trace is not None:
            result.add_trace(record.trace)
    return result


__all__ = [
    # facade functions
    "bench",
    "build_pack",
    "complete",
    "complete_many",
    "diff_runs",
    "explain",
    "fuzz",
    "impact",
    "lint",
    "load_pack",
    "loadtest",
    "open_workspace",
    "profile",
    "serve",
    "slo_report",
    # analysis
    "AbstractTypeAnalysis",
    "Context",
    "DependencyGraph",
    "Diagnostic",
    "ImpactReport",
    "PreflightReport",
    "QueryFootprint",
    "Severity",
    "expand_mutations",
    "footprint_seeds",
    "lint_dependencies",
    "lint_type_system",
    "method_param_types",
    "preflight_query",
    "run_sanitizer_probes",
    # code model
    "Field",
    "LibraryBuilder",
    "Method",
    "Parameter",
    "Property",
    "TypeDef",
    "TypeKind",
    "TypeSystem",
    # engine
    "CacheStats",
    "CancellationToken",
    "Completion",
    "CompletionCache",
    "CompletionEngine",
    "CompletionRequest",
    "EngineConfig",
    "MethodIndex",
    "QueryBudget",
    "QueryOutcome",
    "QueryStatus",
    "Ranker",
    "RankingConfig",
    "ReachabilityIndex",
    "check_stream",
    "sanitize_streams",
    "sanitizer_active",
    # errors
    "BudgetExhausted",
    "CompletionError",
    "CorpusError",
    "FeatureUnavailable",
    "PackCorruptError",
    "PackError",
    "PackStaleError",
    "QueryCancelled",
    "QueryTimeout",
    "StreamInvariantViolation",
    # ide
    "AutoCompleteStatus",
    "CompletionSession",
    "QueryRecord",
    "Suggestion",
    "Workspace",
    # language
    "Assign",
    "Call",
    "Compare",
    "Expr",
    "FieldAccess",
    "Hole",
    "KnownCall",
    "Literal",
    "ParseError",
    "PartialAssign",
    "PartialCompare",
    "SuffixHole",
    "TypeLiteral",
    "Unfilled",
    "UnknownCall",
    "Var",
    "derivable",
    "parse",
    "to_source",
    "well_typed",
    # observability
    "Histogram",
    "Metrics",
    "NULL_TRACER",
    "NullTracer",
    "PhaseDelta",
    "Profile",
    "RunDiff",
    "RunLog",
    "ScoreBreakdown",
    "Span",
    "Tracer",
    "load_run_artifact",
    "ndjson_to_dicts",
    "profile_run_log",
    "read_run_log",
    "render_markdown",
    "trace_to_ndjson",
    "validate_runlog_text",
    "validate_trace_text",
]
