"""Figure 11 — rank difference against the Intellisense model."""

from conftest import emit

from repro.eval import figure11, format_figure11


def test_figure11(benchmark, method_results):
    summary = benchmark(figure11, method_results)
    emit("figure11", format_figure11(summary, "Figure 11 (vs Intellisense)"))
    shares = [v for k, v in summary.items() if k != "count"]
    assert summary["count"] > 0
    assert summary["we_win"] + summary["tie"] + summary["intellisense_wins"] == \
        __import__("pytest").approx(1.0)
