"""Figure 9 — CDF of best rank, split all / instance / static."""

from conftest import emit

from repro.eval import figure9, format_cdf_series


def test_figure9(benchmark, method_results):
    series = benchmark(figure9, method_results)
    emit("figure9", format_cdf_series("Figure 9", series))
    # the CDFs must be monotone in the rank cut-off
    for values in series.values():
        points = list(values.values())
        assert points == sorted(points)
