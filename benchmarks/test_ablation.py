"""Ablation benches for the design choices DESIGN.md calls out.

1. Top-1 ranking ablation: at top-20 our 1/200-scale universes saturate
   the Methods rows of Table 2; at top-1 the paper's finding (the two
   type-distance terms carry method prediction) separates cleanly.
2. Reachability-index pruning: the optional index of Sec. 4.2, measured as
   end-to-end argument-prediction latency with and without pruning.
3. Abstract types on/off: the contribution of the Lackwit analysis to
   argument prediction (the paper's `a` term), as accuracy deltas.
"""

import time

from conftest import emit

from repro.engine.completer import EngineConfig
from repro.engine.ranking import RankingConfig
from repro.eval import EvalConfig, proportion_top, run_method_prediction
from repro.eval.experiments import run_argument_prediction


def test_ablation_methods_top1(benchmark, projects):
    """Table 2's Methods row at cutoff 1 instead of 20."""
    configs = [
        RankingConfig.all_features(),
        RankingConfig.without("t"),
        RankingConfig.without("a"),
        RankingConfig.without("at"),
        RankingConfig.only("d"),
    ]

    def run():
        rows = {}
        for ranking in configs:
            cfg = EvalConfig(
                ranking=ranking,
                limit=30,
                max_calls_per_project=12,
                with_return_type=False,
                with_intellisense=False,
            )
            results = run_method_prediction(projects, cfg)
            rows[ranking.label()] = proportion_top(
                (r.best_rank for r in results), 1
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = ["Methods top-1 ablation"]
    for label, value in rows.items():
        lines.append("  {:<6s} {:.2f}".format(label, value))
    emit("ablation_top1", "\n".join(lines))
    # the paper's central sensitivity result: removing both type-distance
    # terms collapses method prediction
    assert rows["All"] > rows["-at"]


def test_ablation_reachability_pruning(benchmark, projects):
    """Query latency with and without the reachability index."""
    project = projects[1]  # WiX: the largest universe
    cfg_on = EvalConfig(
        limit=40, max_arguments_per_project=40,
        with_return_type=False, with_intellisense=False, abstypes="none",
    )

    def run_with(use_reachability):
        import repro.eval.experiments as exp

        original = EvalConfig.engine_config

        def patched(self):
            return EngineConfig(
                ranking=self.ranking, use_reachability=use_reachability
            )

        EvalConfig.engine_config = patched
        try:
            started = time.perf_counter()
            results = run_argument_prediction([project], cfg_on)
            elapsed = time.perf_counter() - started
        finally:
            EvalConfig.engine_config = original
        return elapsed, results

    def run():
        pruned_time, pruned = run_with(True)
        unpruned_time, unpruned = run_with(False)
        return pruned_time, unpruned_time, pruned, unpruned

    pruned_time, unpruned_time, pruned, unpruned = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    emit(
        "ablation_reachability",
        "Reachability pruning ablation (WiX argument queries)\n"
        "  with index:    {:.2f}s\n  without index: {:.2f}s".format(
            pruned_time, unpruned_time
        ),
    )
    # pruning is an optimization, never a result change
    assert [r.rank for r in pruned] == [r.rank for r in unpruned]


def test_ablation_abstract_types(benchmark, projects):
    """Accuracy of argument prediction across abstract-type modes.

    ``exclude`` is the paper's protocol (inference sees only code before
    the query); ``full`` quantifies the Sec. 5.5 maturity threat (the
    completed project leaks information); ``none`` disables the oracle.
    """

    def run():
        rows = {}
        for mode in ("exclude", "full", "none"):
            cfg = EvalConfig(
                limit=40,
                max_arguments_per_project=30,
                with_return_type=False,
                with_intellisense=False,
                abstypes=mode,
            )
            results = [
                r for r in run_argument_prediction(projects, cfg) if r.guessable
            ]
            rows[mode] = proportion_top((r.rank for r in results), 5)
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "ablation_abstypes",
        "Abstract types ablation (argument prediction, top-5)\n"
        "  paper protocol (per-site exclude): {:.2f}\n"
        "  completed project (maturity leak): {:.2f}\n"
        "  without abstract types:            {:.2f}".format(
            rows["exclude"], rows["full"], rows["none"]
        ),
    )
    assert rows["exclude"] >= rows["none"] - 0.05
    # the maturity leak can only add information
    assert rows["full"] >= rows["exclude"] - 0.05
