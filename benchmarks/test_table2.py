"""Table 2 — ranking-term sensitivity (15 configs x 4 experiment families).

The grid re-runs every experiment under every ranking variant, so the
per-project site caps are small; raise them for a full-fidelity grid.
"""

from conftest import emit

from repro.eval import EvalConfig, format_table2, table2


def test_table2(benchmark, projects):
    base = EvalConfig(
        limit=40,
        max_calls_per_project=10,
        max_arguments_per_project=14,
        max_assignments_per_project=8,
        max_comparisons_per_project=6,
        with_return_type=False,
        with_intellisense=False,
    )
    grid = benchmark.pedantic(
        lambda: table2(projects, base), rounds=1, iterations=1
    )
    emit("table2", format_table2(grid))

    assert grid.columns[0] == "All"
    assert len(grid.columns) == 15
    methods_all = grid.values[("Methods", "All")]
    # at top-20 the Methods rows saturate on a small universe (the top-1
    # separation lives in benchmarks/test_ablation.py); allow subsample
    # noise of a call or two here
    assert methods_all["All"] >= methods_all["-at"] - 0.05
    # depth is what matters for argument prediction
    arguments = grid.values[("Arguments", "Normal")]
    assert arguments["+d"] >= arguments["+n"] - 1e-9
    assert arguments["All"] >= arguments["-d"] + 0.1
