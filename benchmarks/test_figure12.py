"""Figure 12 — rank difference vs. Intellisense with the return type known."""

import pytest
from conftest import emit

from repro.eval import figure11, figure12, format_figure11


def test_figure12(benchmark, method_results):
    summary = benchmark(figure12, method_results)
    emit("figure12", format_figure11(summary, "Figure 12 (known return type)"))
    # knowing the return type must not reduce the win rate
    unfiltered = figure11(method_results)
    assert summary["we_win"] >= unfiltered["we_win"] - 1e-9
