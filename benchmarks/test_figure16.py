"""Figure 16 — comparisons with trailing lookups removed (Sec. 5.3)."""

from conftest import cached_comparison_results, emit

from repro.eval import figure16, format_cdf_series


def test_figure16(benchmark, projects, bench_cfg):
    results = benchmark.pedantic(
        lambda: cached_comparison_results(projects, bench_cfg),
        rounds=1, iterations=1,
    )
    series = figure16(results)
    emit("figure16", format_cdf_series("Figure 16", series))
    # one lookup on one side is the easy case (paper: ~100% in the top 10)
    singles = [r for r in results if r.variant in ("Left", "Right")]
    hit = sum(1 for r in singles if r.rank is not None and r.rank <= 10)
    assert singles and hit / len(singles) > 0.7
