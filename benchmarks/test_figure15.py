"""Figure 15 — assignments with trailing lookups removed (Sec. 5.3)."""

from conftest import cached_assignment_results, emit

from repro.eval import figure15, format_cdf_series


def test_figure15(benchmark, projects, bench_cfg):
    results = benchmark.pedantic(
        lambda: cached_assignment_results(projects, bench_cfg),
        rounds=1, iterations=1,
    )
    series = figure15(results)
    emit("figure15", format_cdf_series("Figure 15", series))
    # removing a lookup from both sides is strictly harder than one side
    assert series["Both"][10] <= max(series["Target"][10], series["Source"][10])
