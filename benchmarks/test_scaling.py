"""Scaling: query latency and index build time vs. universe size.

The paper's speed claims rest on the method index keeping candidate sets
"orders of magnitude smaller than the set of all methods"; this bench
measures how per-query latency grows as the universe does.
"""

import time

from conftest import emit

from repro import Context, CompletionEngine, MethodIndex, parse
from repro.corpus import SynthesisSpec, synthesize_project

SIZES = [10, 30, 90]


def _universe(num_classes):
    spec = SynthesisSpec(
        name="scale{}".format(num_classes),
        seed=4242,
        namespace_root="Scale",
        nouns=["Alpha", "Beta", "Gamma", "Delta"],
        num_classes=num_classes,
        num_helper_classes=max(2, num_classes // 5),
        num_client_classes=1,
    )
    project = synthesize_project(spec)
    return project


def test_scaling(benchmark):
    def run():
        rows = []
        for size in SIZES:
            project = _universe(size)
            ts = project.ts
            methods = sum(1 for _ in ts.all_methods())

            started = time.perf_counter()
            index = MethodIndex(ts)
            index_seconds = time.perf_counter() - started

            impl = project.impls[0]
            context = impl.context(ts)
            engine = CompletionEngine(ts, index=index)
            locals_list = list(context.locals.items())[:2]
            query = "?({{{}}})".format(
                ", ".join(name for name, _ in locals_list)
            )
            pe = parse(query, context)
            started = time.perf_counter()
            repetitions = 20
            for _ in range(repetitions):
                engine.complete(pe, context, n=10)
            per_query_ms = 1000 * (time.perf_counter() - started) / repetitions
            rows.append((size, methods, index_seconds * 1000, per_query_ms))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = ["{:>8s}{:>10s}{:>14s}{:>16s}".format(
        "classes", "methods", "index (ms)", "query (ms)")]
    for size, methods, index_ms, query_ms in rows:
        lines.append("{:>8d}{:>10d}{:>14.1f}{:>16.2f}".format(
            size, methods, index_ms, query_ms))
    emit("scaling", "\n".join(lines))

    # latency must grow far slower than the universe (the index's job):
    # 9x the classes may not cost 9x the query time
    small, large = rows[0], rows[-1]
    assert large[3] < small[3] * (large[1] / small[1])
