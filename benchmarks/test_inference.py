"""Abstract-type inference throughput.

The paper: inference "could take as long as several minutes for a large
codebase but can be done incrementally in the background".  This bench
measures the three modes on the largest project (WiX): a full batch run,
the per-site exclusion re-run the evaluation protocol uses, and the
incremental ``extend`` path.
"""

import time

from conftest import emit

from repro.analysis import AbstractTypeAnalysis


def test_inference_throughput(benchmark, projects):
    wix = projects[1]
    statements = sum(len(impl.body) for impl in wix.impls)

    def run():
        started = time.perf_counter()
        AbstractTypeAnalysis(wix)
        batch = time.perf_counter() - started

        impl = wix.impls[0]
        started = time.perf_counter()
        repetitions = 5
        for index in range(repetitions):
            AbstractTypeAnalysis(wix, exclude_from=(impl, index % 3))
        per_site = (time.perf_counter() - started) / repetitions

        # incremental: start empty, feed every impl
        from repro.corpus.program import Project

        empty = Project("inc", wix.ts)
        analysis = AbstractTypeAnalysis(empty)
        started = time.perf_counter()
        for body in wix.impls:
            analysis.extend(body)
        incremental = time.perf_counter() - started
        return batch, per_site, incremental

    batch, per_site, incremental = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    emit(
        "inference",
        "Abstract-type inference on WiX ({} impls, {} statements)\n"
        "  batch analysis:        {:6.1f} ms\n"
        "  per-site re-run:       {:6.1f} ms  (evaluation protocol)\n"
        "  incremental (total):   {:6.1f} ms  ({:.2f} ms per impl)".format(
            len(wix.impls), statements,
            1000 * batch, 1000 * per_site, 1000 * incremental,
            1000 * incremental / max(1, len(wix.impls)),
        ),
    )
    # the incremental path processes the same constraints as the batch run
    assert incremental < batch * 3
    # per-site re-runs must stay interactive (well under the paper's
    # half-second query budget)
    assert per_site < 0.5
