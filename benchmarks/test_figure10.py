"""Figure 10 — guessability by call arity, one vs two known arguments."""

from conftest import emit

from repro.eval import figure10, format_figure10


def test_figure10(benchmark, method_results):
    table = benchmark(figure10, method_results)
    emit("figure10", format_figure10(table))
    # two known arguments are never worse than one (best-over-subsets)
    for row in table.values():
        assert row["two_args"] >= row["one_arg"]
