"""Sec. 5.1–5.3 speed numbers: fraction of queries inside interactive
budgets, plus micro-benchmarks of single queries."""

import pytest
from conftest import emit

from repro import Context, CompletionEngine, TypeSystem, parse
from repro.corpus.frameworks import build_geometry, build_paintdotnet
from repro.eval import (
    argument_query_times,
    best_method_query_times,
    format_speed,
    lookup_query_times,
    speed_summary,
)


def test_speed_summaries(
    benchmark, method_results, argument_results, assignment_results,
    comparison_results,
):
    lines = [
        format_speed("method queries",
                     speed_summary(best_method_query_times(method_results))),
        format_speed("argument queries",
                     speed_summary(argument_query_times(argument_results))),
        format_speed("lookup queries",
                     speed_summary(lookup_query_times(
                         assignment_results + comparison_results))),
    ]
    benchmark(speed_summary, best_method_query_times(method_results))
    emit("speed", "\n".join(lines))
    summary = speed_summary(best_method_query_times(method_results))
    # paper: 98.9% of method queries under half a second
    assert summary["under_500ms"] > 0.95


@pytest.fixture(scope="module")
def paint_world():
    ts = TypeSystem()
    paint = build_paintdotnet(ts)
    context = Context(ts, locals={"img": paint.document, "size": paint.size})
    return CompletionEngine(ts), context


@pytest.fixture(scope="module")
def geometry_world():
    ts = TypeSystem()
    geo = build_geometry(ts)
    context = Context(
        ts,
        locals={"point": geo.point, "shapeStyle": geo.shape_style},
        this_type=geo.ellipse_arc,
    )
    return CompletionEngine(ts), context


def test_unknown_call_query_latency(benchmark, paint_world):
    engine, context = paint_world
    pe = parse("?({img, size})", context)
    result = benchmark(engine.complete, pe, context, 10)
    assert len(result) == 10


def test_argument_query_latency(benchmark, geometry_world):
    engine, context = geometry_world
    pe = parse("Distance(point, ?)", context)
    result = benchmark(engine.complete, pe, context, 10)
    assert len(result) == 10


def test_comparison_query_latency(benchmark, geometry_world):
    engine, context = geometry_world
    pe = parse("point.?*m >= this.?*m", context)
    result = benchmark(engine.complete, pe, context, 10)
    assert len(result) == 10
