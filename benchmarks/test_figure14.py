"""Figure 14 — census of how call arguments are written."""

import pytest
from conftest import emit

from repro.eval import figure14, format_figure14


def test_figure14(benchmark, argument_results):
    census = benchmark(figure14, argument_results)
    emit("figure14", format_figure14(census))
    assert sum(census.values()) == pytest.approx(1.0)
    # locals dominate real argument positions (and our corpus)
    assert max(census, key=census.get) == "local"
