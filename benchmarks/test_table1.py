"""Table 1 — per-project method-prediction quality.

Benchmarks the full Sec. 5.1 experiment run (the expensive part) and prints
the regenerated table.
"""

import conftest
from conftest import emit

from repro.eval import format_table1, run_method_prediction, table1


def test_table1(benchmark, projects, bench_cfg):
    results = benchmark.pedantic(
        lambda: run_method_prediction(projects, bench_cfg),
        rounds=1, iterations=1,
    )
    conftest._cache["methods"] = results
    emit("table1", format_table1(table1(results)))
    found = [r for r in results if r.best_rank is not None and r.best_rank <= 10]
    # paper: 84.5% of calls have the intended method in the top 10
    assert len(found) / len(results) > 0.6
