"""Figure 13 — argument prediction CDF (benchmarks the Sec. 5.2 run)."""

from conftest import cached_argument_results, emit

from repro.eval import figure13, format_cdf_series


def test_figure13(benchmark, projects, bench_cfg):
    results = benchmark.pedantic(
        lambda: cached_argument_results(projects, bench_cfg),
        rounds=1, iterations=1,
    )
    series = figure13(results)
    emit("figure13", format_cdf_series("Figure 13", series))
    # excluding the low-hanging locals can only lower the curve
    for cutoff, value in series["Normal"].items():
        assert value >= series["No variables"][cutoff] - 1e-9
