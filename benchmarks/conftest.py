"""Shared benchmark fixtures.

Heavy experiment runs are executed once per session (inside their own
benchmark) and cached so the per-figure benchmarks aggregate from the same
results instead of re-running the query engine five times.  Every benchmark
prints the table/figure it regenerates and writes it under
``benchmarks/_output/``.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.corpus import build_all_projects
from repro.eval import (
    EvalConfig,
    run_argument_prediction,
    run_assignment_prediction,
    run_comparison_prediction,
    run_method_prediction,
)

_OUTPUT_DIR = pathlib.Path(__file__).parent / "_output"

#: cross-benchmark cache of experiment results
_cache: dict = {}


@pytest.fixture(scope="session")
def projects():
    return build_all_projects()


@pytest.fixture(scope="session")
def bench_cfg():
    """Per-project site caps keep each family's run around a few seconds."""
    return EvalConfig(
        limit=60,
        max_calls_per_project=60,
        max_arguments_per_project=80,
        max_assignments_per_project=40,
        max_comparisons_per_project=25,
    )


def emit(name: str, text: str) -> None:
    """Print a regenerated table/figure and persist it."""
    print()
    print(text)
    _OUTPUT_DIR.mkdir(exist_ok=True)
    (_OUTPUT_DIR / "{}.txt".format(name)).write_text(text + "\n")


# ---------------------------------------------------------------------------
# cached experiment runs
# ---------------------------------------------------------------------------
def cached_method_results(projects, cfg):
    if "methods" not in _cache:
        _cache["methods"] = run_method_prediction(projects, cfg)
    return _cache["methods"]


def cached_argument_results(projects, cfg):
    if "arguments" not in _cache:
        _cache["arguments"] = run_argument_prediction(projects, cfg)
    return _cache["arguments"]


def cached_assignment_results(projects, cfg):
    if "assignments" not in _cache:
        _cache["assignments"] = run_assignment_prediction(projects, cfg)
    return _cache["assignments"]


def cached_comparison_results(projects, cfg):
    if "comparisons" not in _cache:
        _cache["comparisons"] = run_comparison_prediction(projects, cfg)
    return _cache["comparisons"]


@pytest.fixture(scope="session")
def method_results(projects, bench_cfg):
    return cached_method_results(projects, bench_cfg)


@pytest.fixture(scope="session")
def argument_results(projects, bench_cfg):
    return cached_argument_results(projects, bench_cfg)


@pytest.fixture(scope="session")
def assignment_results(projects, bench_cfg):
    return cached_assignment_results(projects, bench_cfg)


@pytest.fixture(scope="session")
def comparison_results(projects, bench_cfg):
    return cached_comparison_results(projects, bench_cfg)
